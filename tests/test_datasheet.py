"""Tests for repro.evaluation.datasheet."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.evaluation.datasheet import (
    DatasheetLine,
    characterize,
    min_typ_max,
    signoff_datasheet,
)


@pytest.fixture(scope="module")
def datasheet(paper_config):
    return characterize(
        paper_config, n_dies=3, n_samples=2048, samples_per_code=16
    )


class TestCharacterize:
    def test_line_set(self, datasheet):
        names = {line.parameter for line in datasheet.lines}
        for expected in (
            "SNR (f_in=10MHz)",
            "SNDR (f_in=10MHz)",
            "ENOB",
            "|DNL| peak",
            "Power",
            "Area",
        ):
            assert expected in names

    def test_min_typ_max_ordered(self, datasheet):
        for line in datasheet.lines:
            if math.isnan(line.minimum) or math.isnan(line.maximum):
                continue
            assert line.minimum <= line.typical <= line.maximum

    def test_bands_in_physical_range(self, datasheet):
        by_name = {line.parameter: line for line in datasheet.lines}
        assert 63 < by_name["SNR (f_in=10MHz)"].typical < 69
        assert 9.8 < by_name["ENOB"].typical < 11
        assert 0 < by_name["|DNL| peak"].typical < 1.5

    def test_power_and_area_typicals(self, datasheet):
        by_name = {line.parameter: line for line in datasheet.lines}
        assert by_name["Power"].typical == pytest.approx(97, rel=0.06)
        assert by_name["Area"].typical == pytest.approx(0.88, abs=0.1)

    def test_render(self, datasheet):
        text = datasheet.render()
        assert "min" in text and "typ" in text and "max" in text
        assert "Electrical characteristics" in text

    def test_rejects_single_die(self, paper_config):
        with pytest.raises(ConfigurationError):
            characterize(paper_config, n_dies=1)


class TestSignoffDatasheet:
    """The min/typ/max rollup layer the PVT campaign aggregates with."""

    def test_min_typ_max(self):
        assert min_typ_max([3.0, 1.0, 2.0]) == (1.0, 2.0, 3.0)
        assert min_typ_max([5]) == (5.0, 5.0, 5.0)
        with pytest.raises(ConfigurationError):
            min_typ_max([])

    def test_signoff_table(self):
        sheet = signoff_datasheet(
            {
                "SNDR": ("dB", [60.0, 64.0, 62.0]),
                "ENOB": ("bit", [9.7, 10.4, 10.1]),
            },
            n_population=3,
            conversion_rate=110e6,
            conditions="5 corners x 3 temperatures",
        )
        assert sheet.lines[0].parameter == "SNDR"
        assert sheet.lines[0].minimum == 60.0
        assert sheet.lines[0].maximum == 64.0
        text = sheet.render()
        assert "3 cells" in text
        assert "5 corners x 3 temperatures" in text

    def test_characterize_title_unchanged(self, datasheet):
        assert "TT/27C/1.8V" in datasheet.render()
        assert f"{datasheet.n_dies} dies" in datasheet.render()


class TestDatasheetLine:
    def test_nan_rendered_as_dash(self):
        line = DatasheetLine(
            parameter="Resolution",
            unit="bit",
            minimum=float("nan"),
            typical=12.0,
            maximum=float("nan"),
        )
        cells = line.cells()
        assert cells[1] == "-" and cells[3] == "-"
        assert cells[2] == "12.00"
