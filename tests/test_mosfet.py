"""Tests for repro.technology.mosfet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ModelDomainError
from repro.technology.corners import OperatingPoint
from repro.technology.mosfet import Mosfet, MosPolarity


@pytest.fixture(scope="module")
def nmos():
    return Mosfet(
        polarity=MosPolarity.NMOS,
        width=10e-6,
        length=0.18e-6,
        operating_point=OperatingPoint(),
    )


@pytest.fixture(scope="module")
def pmos():
    return Mosfet(
        polarity=MosPolarity.PMOS,
        width=10e-6,
        length=0.18e-6,
        operating_point=OperatingPoint(),
    )


class TestConstruction:
    def test_aspect_ratio(self, nmos):
        assert nmos.aspect_ratio == pytest.approx(10e-6 / 0.18e-6)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            Mosfet(
                polarity=MosPolarity.NMOS,
                width=0.0,
                length=1e-6,
                operating_point=OperatingPoint(),
            )

    def test_kprime_by_polarity(self, nmos, pmos):
        assert nmos.kprime > pmos.kprime


class TestThreshold:
    def test_zero_vsb_is_nominal(self, nmos):
        assert nmos.threshold(0.0) == pytest.approx(0.45, abs=1e-9)

    def test_body_effect_raises_vth(self, nmos):
        assert nmos.threshold(0.9) > nmos.threshold(0.0)

    def test_body_effect_array(self, nmos):
        vsb = np.linspace(0, 1.5, 7)
        vth = nmos.threshold(vsb)
        assert np.all(np.diff(vth) > 0)

    def test_rejects_deep_forward_bias(self, nmos):
        with pytest.raises(ModelDomainError):
            nmos.threshold(-1.0)


class TestSaturation:
    def test_current_positive(self, nmos):
        assert nmos.saturation_current(0.2) > 0

    def test_current_grows_with_overdrive(self, nmos):
        assert nmos.saturation_current(0.3) > nmos.saturation_current(0.2)

    def test_rejects_below_threshold(self, nmos):
        with pytest.raises(ModelDomainError):
            nmos.saturation_current(-0.1)

    def test_overdrive_inverts_current(self, nmos):
        """overdrive_for_current is the exact inverse of the current law."""
        for vov in (0.1, 0.2, 0.35, 0.6):
            current = nmos.saturation_current(vov)
            assert nmos.overdrive_for_current(current) == pytest.approx(
                vov, rel=1e-9
            )

    @given(st.floats(min_value=1e-7, max_value=1e-2))
    def test_overdrive_for_current_consistent(self, current):
        device = Mosfet(
            polarity=MosPolarity.NMOS,
            width=40e-6,
            length=0.25e-6,
            operating_point=OperatingPoint(),
        )
        vov = device.overdrive_for_current(current)
        assert vov > 0
        assert device.saturation_current(vov) == pytest.approx(
            current, rel=1e-6
        )

    def test_transconductance_positive_and_sublinear(self, nmos):
        """gm grows with current but slower than linearly (square law) —
        the mechanism behind the Fig. 5 settling knee."""
        gm1 = nmos.transconductance(1e-4)
        gm4 = nmos.transconductance(4e-4)
        assert gm1 > 0
        assert gm4 > gm1
        assert gm4 < 4 * gm1
        # Square-law: gm ~ sqrt(I) at low overdrive.
        assert gm4 == pytest.approx(2 * gm1, rel=0.25)

    def test_rejects_nonpositive_current(self, nmos):
        with pytest.raises(ModelDomainError):
            nmos.overdrive_for_current(0.0)


class TestTriode:
    def test_conductance_positive_above_threshold(self, nmos):
        g = nmos.triode_conductance(1.8)
        assert g > 0

    def test_conductance_monotone_in_vgs(self, nmos):
        vgs = np.linspace(0.0, 1.8, 50)
        g = nmos.triode_conductance(vgs)
        assert np.all(np.diff(g) > 0)

    def test_subthreshold_is_small_but_smooth(self, nmos):
        """Below threshold the conductance decays exponentially rather
        than clipping to zero (the smoothing that keeps switch Ron(V)
        curvature physical)."""
        g_off = float(nmos.triode_conductance(0.2))
        g_on = float(nmos.triode_conductance(1.8))
        assert 0 < g_off < 1e-3 * g_on

    def test_body_effect_reduces_conductance(self, nmos):
        g_no_body = float(nmos.triode_conductance(1.0, 0.0))
        g_body = float(nmos.triode_conductance(1.0, 0.9))
        assert g_body < g_no_body

    @given(st.floats(min_value=0.0, max_value=1.8))
    def test_conductance_never_negative(self, vgs):
        device = Mosfet(
            polarity=MosPolarity.NMOS,
            width=10e-6,
            length=0.18e-6,
            operating_point=OperatingPoint(),
        )
        assert float(device.triode_conductance(vgs)) >= 0


class TestParasitics:
    def test_gate_capacitance(self, nmos):
        expected = 8.4e-3 * 10e-6 * 0.18e-6
        assert nmos.gate_capacitance() == pytest.approx(expected)

    def test_leakage_doubles_every_8c(self, nmos):
        hot = Mosfet(
            polarity=MosPolarity.NMOS,
            width=10e-6,
            length=0.18e-6,
            operating_point=OperatingPoint(temperature_c=35.0),
        )
        assert hot.junction_leakage() == pytest.approx(
            2 * nmos.junction_leakage(), rel=1e-6
        )

    def test_vth_mismatch_shrinks_with_area(self):
        small = Mosfet(
            polarity=MosPolarity.NMOS,
            width=1e-6,
            length=0.18e-6,
            operating_point=OperatingPoint(),
        )
        big = Mosfet(
            polarity=MosPolarity.NMOS,
            width=100e-6,
            length=0.18e-6,
            operating_point=OperatingPoint(),
        )
        assert big.vth_mismatch_sigma() == pytest.approx(
            small.vth_mismatch_sigma() / 10, rel=1e-9
        )
