"""Tests for repro.core.subadc."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subadc import SubAdc
from repro.devices.comparator import ComparatorParameters
from repro.errors import ConfigurationError


def clean_parameters():
    return ComparatorParameters(
        offset_sigma=0.0, noise_rms=0.0, hysteresis=0.0, metastability_window=0.0
    )


class TestSubAdc:
    def test_ideal_decisions(self, rng):
        adsc = SubAdc(1.0, clean_parameters(), np.random.default_rng(0))
        v = np.array([-0.9, -0.26, -0.24, 0.0, 0.24, 0.26, 0.9])
        codes = adsc.decide(v, rng)
        assert list(codes) == [-1, -1, 0, 0, 0, 1, 1]

    def test_codes_in_range(self, rng):
        adsc = SubAdc(
            1.0, ComparatorParameters(offset_sigma=0.05), np.random.default_rng(3)
        )
        codes = adsc.decide(np.random.default_rng(0).uniform(-1.5, 1.5, 5000), rng)
        assert codes.min() >= -1 and codes.max() <= 1

    def test_redundancy_margin(self):
        adsc = SubAdc(1.0, clean_parameters(), np.random.default_rng(0))
        assert adsc.redundancy_margin() == pytest.approx(0.25)

    def test_offsets_frozen(self, rng):
        adsc = SubAdc(
            1.0, ComparatorParameters(offset_sigma=8e-3), np.random.default_rng(9)
        )
        first = adsc.offsets
        adsc.decide(np.zeros(10), rng)
        assert adsc.offsets == first
        assert len(first) == 2

    def test_rejects_bad_vref(self):
        with pytest.raises(ConfigurationError):
            SubAdc(0.0, clean_parameters(), np.random.default_rng(0))

    @settings(max_examples=30)
    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_monotone_in_input(self, v):
        """A slightly larger input never yields a smaller code."""
        adsc = SubAdc(1.0, clean_parameters(), np.random.default_rng(1))
        rng = np.random.default_rng(0)
        lo = adsc.decide(np.array([v - 1e-6]), rng)[0]
        hi = adsc.decide(np.array([v + 1e-6]), rng)[0]
        assert hi >= lo
