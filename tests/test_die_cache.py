"""Tests for repro.core.die_cache — the content-addressed die cache.

The contract: :func:`build_die` is a drop-in for the ``PipelineAdc``
constructor.  A hit returns the previously built instance (observable
only as saved wall time), a key that differs in any component —
config, conversion rate, PVT point, die seed — misses and builds
fresh, and a cached die's conversions stay bit-exact with an uncached
construction.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import die_cache
from repro.core.adc import PipelineAdc
from repro.signal.generators import SineGenerator
from repro.technology.corners import OperatingPoint


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts and ends with an empty, enabled cache."""
    die_cache.clear()
    die_cache.set_enabled(True)
    yield
    die_cache.clear()
    die_cache.set_enabled(True)


@pytest.fixture()
def hot_point(technology):
    return OperatingPoint(
        technology=technology, temperature_c=125.0, supply_scale=0.95
    )


class TestHitAndMiss:
    def test_identical_key_hits(self, paper_config):
        first = die_cache.build_die(paper_config, 110e6, seed=7)
        second = die_cache.build_die(paper_config, 110e6, seed=7)
        assert second is first
        stats = die_cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.lookups == 2

    def test_default_point_matches_explicit_nominal(self, paper_config):
        """None resolves to the nominal point — one cache entry, not two."""
        nominal = OperatingPoint(technology=paper_config.technology)
        first = die_cache.build_die(paper_config, 110e6, None, seed=3)
        second = die_cache.build_die(paper_config, 110e6, nominal, seed=3)
        assert second is first

    def test_config_drift_misses(self, paper_config):
        first = die_cache.build_die(paper_config, 110e6, seed=7)
        drifted = dataclasses.replace(paper_config, stage1_mirror_ratio=21.0)
        second = die_cache.build_die(drifted, 110e6, seed=7)
        assert second is not first
        assert die_cache.stats().misses == 2

    def test_pvt_drift_misses(self, paper_config, hot_point):
        first = die_cache.build_die(paper_config, 110e6, seed=7)
        second = die_cache.build_die(paper_config, 110e6, hot_point, seed=7)
        assert second is not first

    def test_seed_drift_misses(self, paper_config):
        first = die_cache.build_die(paper_config, 110e6, seed=7)
        second = die_cache.build_die(paper_config, 110e6, seed=8)
        assert second is not first

    def test_rate_drift_misses(self, paper_config):
        first = die_cache.build_die(paper_config, 110e6, seed=7)
        second = die_cache.build_die(paper_config, 100e6, seed=7)
        assert second is not first


class TestBitExactness:
    def test_cached_die_converts_bit_exact(self, paper_config, hot_point):
        """A reused die produces the codes a fresh construction would."""
        cached = die_cache.build_die(paper_config, 110e6, hot_point, seed=5)
        cached = die_cache.build_die(paper_config, 110e6, hot_point, seed=5)
        fresh = PipelineAdc(
            paper_config, 110e6, operating_point=hot_point, seed=5
        )
        tone = SineGenerator.coherent(10e6, 110e6, 256, amplitude=0.9)
        assert np.array_equal(
            cached.convert(tone, 256).codes, fresh.convert(tone, 256).codes
        )

    def test_no_cross_key_leakage(self, paper_config):
        """Interleaved campaigns each get their own die back."""
        a1 = die_cache.build_die(paper_config, 110e6, seed=1)
        b1 = die_cache.build_die(paper_config, 110e6, seed=2)
        a2 = die_cache.build_die(paper_config, 110e6, seed=1)
        b2 = die_cache.build_die(paper_config, 110e6, seed=2)
        assert a2 is a1 and b2 is b1 and a1 is not b1
        ramp = np.linspace(-1.0, 1.0, 128)
        assert np.array_equal(
            a2.convert_samples(ramp).codes,
            PipelineAdc(paper_config, 110e6, seed=1)
            .convert_samples(ramp)
            .codes,
        )


class TestLifecycle:
    def test_clear_drops_entries_and_counters(self, paper_config):
        die_cache.build_die(paper_config, 110e6, seed=1)
        die_cache.build_die(paper_config, 110e6, seed=1)
        die_cache.clear()
        stats = die_cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
        die_cache.build_die(paper_config, 110e6, seed=1)
        assert die_cache.stats().misses == 1

    def test_disabled_cache_builds_fresh(self, paper_config):
        die_cache.set_enabled(False)
        first = die_cache.build_die(paper_config, 110e6, seed=1)
        second = die_cache.build_die(paper_config, 110e6, seed=1)
        assert second is not first
        stats = die_cache.stats()
        assert (stats.lookups, stats.size) == (0, 0)

    def test_lru_bound_evicts_oldest(self, paper_config, monkeypatch):
        monkeypatch.setattr(die_cache, "MAX_CACHED_DIES", 2)
        first = die_cache.build_die(paper_config, 110e6, seed=1)
        die_cache.build_die(paper_config, 110e6, seed=2)
        die_cache.build_die(paper_config, 110e6, seed=3)  # evicts seed=1
        assert die_cache.stats().size == 2
        again = die_cache.build_die(paper_config, 110e6, seed=1)
        assert again is not first
