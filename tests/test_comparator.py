"""Tests for repro.devices.comparator."""

import numpy as np
import pytest

from repro.devices.comparator import (
    ComparatorParameters,
    DynamicComparator,
    build_comparator_bank,
)
from repro.errors import ConfigurationError


def make(threshold=0.0, seed=0, **kwargs):
    return DynamicComparator(
        threshold, ComparatorParameters(**kwargs), np.random.default_rng(seed)
    )


class TestOffset:
    def test_offset_frozen_per_instance(self, rng):
        comp = make(offset_sigma=5e-3, seed=3)
        first = comp.offset
        comp.compare(np.zeros(10), rng)
        assert comp.offset == first

    def test_offset_statistics(self):
        offsets = [make(offset_sigma=8e-3, seed=s).offset for s in range(500)]
        assert abs(np.mean(offsets)) < 2e-3
        assert np.std(offsets) == pytest.approx(8e-3, rel=0.15)

    def test_zero_sigma_means_zero_offset(self):
        assert make(offset_sigma=0.0).offset == 0.0

    def test_effective_threshold(self):
        comp = make(threshold=0.25, offset_sigma=0.0)
        assert comp.effective_threshold == 0.25


class TestDecisions:
    def test_clean_decisions_without_impairments(self, rng):
        comp = make(
            offset_sigma=0.0,
            noise_rms=0.0,
            hysteresis=0.0,
            metastability_window=0.0,
        )
        v = np.array([-0.5, -0.01, 0.01, 0.5])
        assert list(comp.compare(v, rng)) == [False, False, True, True]

    def test_noise_randomizes_marginal_inputs(self, rng):
        comp = make(offset_sigma=0.0, noise_rms=5e-3, metastability_window=0.0)
        v = np.zeros(4000)
        decisions = comp.compare(v, rng)
        rate = decisions.mean()
        assert 0.4 < rate < 0.6

    def test_noise_does_not_flip_solid_inputs(self, rng):
        comp = make(offset_sigma=0.0, noise_rms=1e-3, metastability_window=0.0)
        assert comp.compare(np.full(1000, 0.1), rng).all()
        assert not comp.compare(np.full(1000, -0.1), rng).any()

    def test_hysteresis_biases_toward_history(self, rng):
        comp = make(
            offset_sigma=0.0,
            noise_rms=0.0,
            hysteresis=10e-3,
            metastability_window=0.0,
        )
        v = np.full(4, 5e-3)  # inside the hysteresis band
        held_high = comp.compare(v, rng, previous=np.array([True] * 4))
        held_low = comp.compare(v, rng, previous=np.array([False] * 4))
        assert held_high.all()
        assert not held_low.any()

    def test_hysteresis_shape_mismatch_rejected(self, rng):
        comp = make(hysteresis=1e-3)
        with pytest.raises(ConfigurationError):
            comp.compare(np.zeros(4), rng, previous=np.zeros(3, dtype=bool))

    def test_metastability_randomizes_tiny_margins(self, rng):
        comp = make(
            offset_sigma=0.0, noise_rms=0.0, metastability_window=1e-3
        )
        v = np.full(2000, 0.5e-3)  # inside the window, above threshold
        rate = comp.compare(v, rng).mean()
        assert 0.35 < rate < 0.65


class TestBank:
    def test_bank_order_and_count(self):
        bank = build_comparator_bank(
            [-0.25, 0.25], ComparatorParameters(), np.random.default_rng(0)
        )
        assert len(bank) == 2
        assert bank[0].threshold < bank[1].threshold

    def test_bank_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            build_comparator_bank(
                [0.25, -0.25], ComparatorParameters(), np.random.default_rng(0)
            )

    def test_bank_offsets_independent(self):
        bank = build_comparator_bank(
            [-0.25, 0.25],
            ComparatorParameters(offset_sigma=8e-3),
            np.random.default_rng(5),
        )
        assert bank[0].offset != bank[1].offset

    def test_parameters_reject_negative(self):
        with pytest.raises(ConfigurationError):
            ComparatorParameters(noise_rms=-1.0)
