"""Tests for repro.analog.references."""

import numpy as np
import pytest

from repro.analog.references import ReferenceBuffer
from repro.errors import ConfigurationError


class TestReferenceBuffer:
    def test_effective_reference_near_nominal(self):
        buf = ReferenceBuffer()
        v = buf.effective_reference(2e-12, 110e6)
        assert v == pytest.approx(1.0, abs=5e-3)

    def test_sag_grows_with_rate(self):
        buf = ReferenceBuffer()
        slow = buf.effective_reference(2e-12, 20e6)
        fast = buf.effective_reference(2e-12, 140e6)
        assert fast < slow

    def test_load_current_formula(self):
        buf = ReferenceBuffer(nominal_reference=1.0)
        assert buf.load_current(2e-12, 110e6) == pytest.approx(2.2e-4)

    def test_zero_impedance_means_no_sag(self):
        buf = ReferenceBuffer(output_impedance=0.0, static_error=0.0)
        assert buf.effective_reference(5e-12, 200e6) == pytest.approx(1.0)

    def test_sample_reference_statistics(self, rng):
        buf = ReferenceBuffer(noise_rms=100e-6)
        samples = buf.sample_reference(20000, 2e-12, 110e6, rng)
        assert samples.std() == pytest.approx(100e-6, rel=0.05)
        assert samples.mean() == pytest.approx(
            buf.effective_reference(2e-12, 110e6), abs=5e-6
        )

    def test_sample_reference_noiseless(self, rng):
        buf = ReferenceBuffer(noise_rms=0.0)
        samples = buf.sample_reference(100, 2e-12, 110e6, rng)
        assert np.unique(samples).size == 1

    def test_static_power_rate_independent(self, operating_point):
        buf = ReferenceBuffer()
        assert buf.power(operating_point) == pytest.approx(
            buf.quiescent_current * 1.8
        )

    def test_buffer_is_the_static_power_hog(self, operating_point):
        """The reference buffer dominates the ~26 mW zero-rate intercept
        of Fig. 4."""
        assert ReferenceBuffer().power(operating_point) > 15e-3

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ConfigurationError):
            ReferenceBuffer(nominal_reference=0.0)
        with pytest.raises(ConfigurationError):
            ReferenceBuffer().sample_reference(0, 1e-12, 1e8, rng)
        with pytest.raises(ConfigurationError):
            ReferenceBuffer().load_current(-1e-12, 1e8)
