"""Tests for repro.analog.bandgap."""

import pytest

from repro.analog.bandgap import BandgapReference
from repro.errors import ConfigurationError
from repro.technology.corners import Corner, OperatingPoint


@pytest.fixture(scope="module")
def bandgap():
    return BandgapReference()


class TestBandgap:
    def test_nominal_voltage_at_trim(self, bandgap, technology):
        point = OperatingPoint(technology=technology, temperature_c=45.0)
        assert bandgap.voltage(point) == pytest.approx(1.20, abs=1e-6)

    def test_curvature_small_over_military_range(self, bandgap, technology):
        """'Near independent of variations in ... temperature' — the
        bandgap moves a few millivolts over -40..125 C."""
        voltages = [
            bandgap.voltage(
                OperatingPoint(technology=technology, temperature_c=t)
            )
            for t in (-40, 0, 27, 85, 125)
        ]
        assert max(voltages) - min(voltages) < 20e-3

    def test_curvature_is_concave(self, bandgap, technology):
        """Output peaks at the trim temperature (negative curvature)."""
        apex = bandgap.voltage(
            OperatingPoint(technology=technology, temperature_c=45.0)
        )
        cold = bandgap.voltage(
            OperatingPoint(technology=technology, temperature_c=-40.0)
        )
        hot = bandgap.voltage(
            OperatingPoint(technology=technology, temperature_c=125.0)
        )
        assert apex >= cold and apex >= hot

    def test_line_sensitivity(self, bandgap, technology):
        nominal = bandgap.voltage(OperatingPoint(technology=technology))
        high = bandgap.voltage(
            OperatingPoint(technology=technology, supply_scale=1.1)
        )
        assert abs(high - nominal) == pytest.approx(
            bandgap.line_sensitivity * 0.18, rel=1e-6
        )

    def test_corner_offsets_symmetric(self, bandgap, technology):
        ff = bandgap.voltage(
            OperatingPoint(technology=technology, corner=Corner.FF)
        )
        ss = bandgap.voltage(
            OperatingPoint(technology=technology, corner=Corner.SS)
        )
        tt = bandgap.voltage(OperatingPoint(technology=technology))
        assert ff - tt == pytest.approx(tt - ss, rel=1e-6)

    def test_power_is_milliwatt_scale(self, bandgap, operating_point):
        assert 0.5e-3 < bandgap.power(operating_point) < 5e-3

    def test_rejects_bad_voltage(self):
        with pytest.raises(ConfigurationError):
            BandgapReference(nominal_voltage=-1.0)
