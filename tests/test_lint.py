"""Tests for the ``repro lint`` static invariant checker.

The load-bearing contracts:

* **Per-checker fixtures** — each rule family fires on a minimal
  violating tree and stays silent on the sanctioned equivalent, so a
  rule regression is caught by name.
* **Repo self-check** — the real repository lints clean (justified
  suppressions only); the gate in CI is this same call.
* **Registry consistency** — the static fingerprint registries in
  ``core/config.py`` partition the live ``AdcConfig`` fields exactly.
"""

import dataclasses
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    CHECKERS,
    LintUsageError,
    Project,
    apply_suppressions,
    parse_suppressions,
    run_lint,
)
from repro.analysis import fingerprint as fingerprint_checker
from repro.analysis import nondeterminism as nondeterminism_checker
from repro.analysis import purity as purity_checker
from repro.analysis import rng as rng_checker
from repro.analysis import schema_registry as schema_checker
from repro.cli import main
from repro.core.config import (
    FINGERPRINT_EXCLUDED,
    FINGERPRINT_FIELDS,
    AdcConfig,
)
from repro.runtime.campaign import CampaignSpec
from repro.schemas import LINT_REPORT_SCHEMA

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path: Path, files: dict) -> Project:
    """Write a fixture tree and parse it."""
    for relative, text in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return Project.load(tmp_path, ("src/repro", "benchmarks"))


def rules(findings) -> list:
    return [finding.rule for finding in findings]


# --- checker 1: RNG stream discipline ------------------------------------


def test_rng001_flags_construction_outside_allowlist(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/core/foo.py": """
                import numpy as np

                def f(seed):
                    return np.random.default_rng(seed)
                """,
        },
    )
    findings = list(rng_checker.check(project))
    assert rules(findings) == ["RNG001"]
    assert findings[0].scope == "f"
    assert findings[0].path == "src/repro/core/foo.py"


def test_rng001_sees_through_import_aliases(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/core/foo.py": """
                from numpy.random import default_rng as mk

                def f(seed):
                    return mk(seed)
                """,
        },
    )
    assert rules(rng_checker.check(project)) == ["RNG001"]


def test_rng001_allows_the_stream_roots(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/streams.py": """
                import numpy as np

                def noise_generator(seed):
                    return np.random.default_rng(seed)
                """,
        },
    )
    assert rules(rng_checker.check(project)) == []


def test_rng002_bans_global_state_draws_everywhere(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/streams.py": """
                import numpy as np

                def f():
                    return np.random.normal(0.0, 1.0, 8)
                """,
        },
    )
    assert rules(rng_checker.check(project)) == ["RNG002"]


def test_rng_parameter_draws_are_legal(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/core/foo.py": """
                def f(rng):
                    return rng.normal(0.0, 1.0, 8)
                """,
        },
    )
    assert rules(rng_checker.check(project)) == []


# --- checker 2: nondeterminism sources -----------------------------------


def test_det001_bans_random_import_in_engine_layer(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/core/foo.py": "import random\n",
            "src/repro/runtime/foo.py": "import random\n",
        },
    )
    findings = list(nondeterminism_checker.check(project))
    assert rules(findings) == ["DET001"]
    assert findings[0].path == "src/repro/core/foo.py"


def test_det002_bans_wall_clocks_in_engine_layer(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/devices/foo.py": """
                import time

                def f():
                    return time.time()
                """,
        },
    )
    assert rules(nondeterminism_checker.check(project)) == ["DET002"]


def test_det003_bans_environment_reads_in_engine_layer(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/signal/foo.py": """
                import os

                def f():
                    return os.environ.get("REPRO_MODE", os.getenv("X"))
                """,
        },
    )
    assert rules(nondeterminism_checker.check(project)) == [
        "DET003",
        "DET003",
    ]


def test_det004_restricts_perf_counter_to_timing_sites(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/core/foo.py": """
                from time import perf_counter

                def f():
                    return perf_counter()
                """,
            "src/repro/profiling.py": """
                from time import perf_counter

                def f():
                    return perf_counter()
                """,
        },
    )
    findings = list(nondeterminism_checker.check(project))
    assert rules(findings) == ["DET004"]
    assert findings[0].path == "src/repro/core/foo.py"


# --- checker 3: fingerprint coverage -------------------------------------

CONFIG_HEADER = textwrap.dedent(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class AdcConfig:
        a: int = 1
        b: int = 2
        c: int = 3
    """
)


def config_fixture(registries: str) -> str:
    return CONFIG_HEADER + textwrap.dedent(registries)


def test_fpr002_flags_undecided_field(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/core/config.py": config_fixture(
                """
                FINGERPRINT_FIELDS = ("a",)
                FINGERPRINT_EXCLUDED = {"b": "pure heuristic"}
                """
            ),
        },
    )
    findings = list(fingerprint_checker.check(project))
    assert rules(findings) == ["FPR002"]
    assert "'c'" in findings[0].message


def test_fingerprint_registries_partition_cleanly(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/core/config.py": config_fixture(
                """
                FINGERPRINT_FIELDS = ("a", "c")
                FINGERPRINT_EXCLUDED = {"b": "pure heuristic"}
                """
            ),
        },
    )
    assert rules(fingerprint_checker.check(project)) == []


def test_fpr001_flags_missing_registries(tmp_path):
    project = make_project(tmp_path, {"src/repro/core/config.py": CONFIG_HEADER})
    findings = list(fingerprint_checker.check(project))
    assert rules(findings)[:2] == ["FPR001", "FPR001"]


def test_fpr003_fpr004_fpr005_registry_hygiene(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/core/config.py": config_fixture(
                """
                FINGERPRINT_FIELDS = ("a", "b", "ghost")
                FINGERPRINT_EXCLUDED = {"b": "reason", "c": ""}
                """
            ),
        },
    )
    found = rules(fingerprint_checker.check(project))
    assert found.count("FPR003") == 1  # ghost
    assert found.count("FPR004") == 1  # b in both
    assert found.count("FPR005") == 1  # c unjustified


def test_fpr006_fpr007_fingerprint_method_discipline(tmp_path):
    campaign = """
        import dataclasses

        class CampaignSpec:
            def fingerprint(self, config):
                d = dataclasses.asdict(config)
                d.pop("per_die_record_threshold", None)
                return d
        """
    project = make_project(
        tmp_path,
        {
            "src/repro/core/config.py": config_fixture(
                """
                FINGERPRINT_FIELDS = ("a", "b", "c")
                FINGERPRINT_EXCLUDED = {}
                """
            ),
            "src/repro/runtime/campaign.py": campaign,
        },
    )
    found = rules(fingerprint_checker.check(project))
    assert "FPR006" in found and "FPR007" in found


# --- checker 4: schema single source -------------------------------------


def test_sch001_flags_literals_outside_registry(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/runtime/foo.py": """
                '''Emits repro.foo-report/v1 documents.'''

                SCHEMA = "repro.foo-report/v1"
                """,
        },
    )
    findings = list(schema_checker.check(project))
    # The docstring mention is not flagged; the binding is.
    assert rules(findings) == ["SCH001"]


def test_sch002_sch003_registry_hygiene(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/schemas.py": """
                A_SCHEMA = "repro.thing/v1"
                B_SCHEMA = "repro.thing/v2"

                def hidden():
                    return "repro.other/v1"
                """,
        },
    )
    found = rules(schema_checker.check(project))
    assert found == ["SCH002", "SCH003"]


# --- checker 5: die purity -----------------------------------------------

MDAC_FIXTURE = """
    class Mdac:
        def __init__(self):
            self.gain = 2.0
            self._build_caps()

        def _build_caps(self):
            self.c1 = 1.0

        def stack(self, others):
            self.rows = others

        def transfer(self, v):
            self.last_input = v
            object.__setattr__(self, "_memo", v)
            return v * self.gain
    """


def test_purity_rules_fire_outside_constructors_only(tmp_path):
    project = make_project(tmp_path, {"src/repro/core/mdac.py": MDAC_FIXTURE})
    findings = list(purity_checker.check(project))
    assert sorted(rules(findings)) == ["PUR001", "PUR002"]
    assert all(f.scope == "Mdac.transfer" for f in findings)


def test_purity_ignores_uncached_classes(tmp_path):
    project = make_project(
        tmp_path,
        {"src/repro/core/mdac.py": MDAC_FIXTURE.replace("Mdac", "Helper")},
    )
    assert rules(purity_checker.check(project)) == []


# --- suppressions --------------------------------------------------------


def test_suppression_matching_and_hygiene(tmp_path):
    project = make_project(tmp_path, {"src/repro/core/mdac.py": MDAC_FIXTURE})
    findings = list(purity_checker.check(project))
    text = (
        "# comment\n"
        "PUR001 src/repro/core/mdac.py Mdac.transfer -- intentional\n"
        "PUR001 src/repro/core/mdac.py Mdac.other -- stale entry\n"
        "PUR002 src/repro/core/mdac.py no-reason\n"
    )
    entries, malformed = parse_suppressions(text, "lint-suppressions.txt")
    assert rules(malformed) == ["SUP002"]
    result = apply_suppressions(findings, entries, "lint-suppressions.txt")
    assert [f.rule for f, _ in result.suppressed] == ["PUR001"]
    kept = rules(result.kept)
    assert "PUR002" in kept  # not suppressed
    assert "SUP001" in kept  # the stale entry


def test_wildcard_scope_suppression(tmp_path):
    project = make_project(tmp_path, {"src/repro/core/mdac.py": MDAC_FIXTURE})
    findings = list(purity_checker.check(project))
    entries, _ = parse_suppressions(
        "PUR001 src/repro/core/mdac.py * -- fixture\n"
        "PUR002 src/repro/core/mdac.py * -- fixture\n",
        "s.txt",
    )
    result = apply_suppressions(findings, entries, "s.txt")
    assert result.kept == ()


# --- the runner and the repo self-check ----------------------------------


def test_checker_registry_covers_all_five_invariants():
    assert sorted(checker.invariant for checker in CHECKERS) == [
        "deterministic-replay",
        "die-purity",
        "fingerprint-coverage",
        "rng-stream-discipline",
        "schema-single-source",
    ]


def test_repo_lints_clean():
    report = run_lint(REPO_ROOT)
    assert report.clean, report.render()
    # The committed exceptions are exactly the two Mdac memo slots.
    assert sorted((f.rule, f.scope) for f, _ in report.suppressed) == [
        ("PUR002", "Mdac._constants"),
        ("PUR002", "Mdac._fast_constants"),
    ]


def test_run_lint_rejects_unparseable_tree(tmp_path):
    broken = tmp_path / "src" / "repro" / "foo.py"
    broken.parent.mkdir(parents=True)
    broken.write_text("def broken(:\n")
    with pytest.raises(LintUsageError):
        run_lint(tmp_path)


def test_lint_report_document(tmp_path):
    make_project(
        tmp_path,
        {
            "src/repro/core/foo.py": """
                import numpy as np

                def f(seed):
                    return np.random.default_rng(seed)
                """,
        },
    )
    report = run_lint(tmp_path)
    doc = report.to_dict()
    assert doc["schema"] == LINT_REPORT_SCHEMA
    assert doc["clean"] is False
    assert [f["rule"] for f in doc["findings"]] == ["RNG001"]
    assert json.loads(report.to_json()) == doc


# --- the CLI -------------------------------------------------------------


def test_cli_lint_clean_repo_exit_zero(capsys):
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_violations_exit_one(tmp_path, capsys):
    make_project(
        tmp_path,
        {"src/repro/core/foo.py": "import random\n"},
    )
    report_path = tmp_path / "report.json"
    code = main(
        [
            "lint",
            "--root",
            str(tmp_path),
            "--json",
            str(report_path),
        ]
    )
    assert code == 1
    assert "DET001" in capsys.readouterr().out
    doc = json.loads(report_path.read_text())
    assert doc["schema"] == LINT_REPORT_SCHEMA
    assert doc["clean"] is False


def test_cli_lint_usage_error_exit_two(tmp_path, capsys):
    code = main(
        [
            "lint",
            "--root",
            str(REPO_ROOT),
            "--suppressions",
            str(tmp_path / "missing.txt"),
        ]
    )
    assert code == 2
    assert "error:" in capsys.readouterr().err


# --- live registry consistency -------------------------------------------


def test_fingerprint_registries_match_live_dataclass():
    fields = {field.name for field in dataclasses.fields(AdcConfig)}
    included = set(FINGERPRINT_FIELDS)
    excluded = set(FINGERPRINT_EXCLUDED)
    assert included | excluded == fields
    assert included & excluded == set()
    assert all(reason.strip() for reason in FINGERPRINT_EXCLUDED.values())


def test_fingerprint_drops_exactly_the_excluded_fields():
    spec = CampaignSpec(n_dies=1, temperatures_c=(27.0,))
    document = spec.fingerprint(AdcConfig.paper_default())
    assert set(document["config"]) == set(FINGERPRINT_FIELDS)
