"""Tests for repro.core.adc — the assembled converter."""

import numpy as np
import pytest

from repro.core.adc import PipelineAdc
from repro.core.behavioral import ideal_transfer_codes
from repro.errors import ConfigurationError, ModelDomainError
from repro.signal.generators import DcGenerator, SineGenerator


class TestConstruction:
    def test_builds_ten_stages(self, paper_adc):
        assert len(paper_adc.stages) == 10

    def test_same_seed_same_die(self, paper_config):
        a = PipelineAdc(paper_config, 110e6, seed=42)
        b = PipelineAdc(paper_config, 110e6, seed=42)
        assert a.stages[0].mdac.ratio_error == b.stages[0].mdac.ratio_error
        assert a.stages[3].subadc.offsets == b.stages[3].subadc.offsets

    def test_different_seed_different_die(self, paper_config):
        a = PipelineAdc(paper_config, 110e6, seed=1)
        b = PipelineAdc(paper_config, 110e6, seed=2)
        assert a.stages[0].mdac.ratio_error != b.stages[0].mdac.ratio_error

    def test_bias_scales_down_the_chain(self, paper_adc):
        currents = paper_adc.bias_report.stage_currents
        assert currents[0] > currents[1] > currents[2]
        assert currents[2] == pytest.approx(currents[9], rel=0.05)

    def test_stage1_bias_current_magnitude(self, paper_adc):
        """The SC generator delivers ~2.6 mA to stage 1 at 110 MS/s."""
        assert paper_adc.bias_report.stage_currents[0] == pytest.approx(
            2.6e-3, rel=0.1
        )

    def test_rejects_nonpositive_rate(self, paper_config):
        with pytest.raises(ConfigurationError):
            PipelineAdc(paper_config, 0.0)

    def test_rejects_impossible_rate(self, paper_config):
        with pytest.raises(ModelDomainError):
            PipelineAdc(paper_config, 500e6)

    def test_describe_stages(self, paper_adc):
        infos = paper_adc.describe_stages()
        assert len(infos) == 10
        assert 0.3 < infos[0]["feedback_factor"] < 0.5
        assert infos[0]["ideal_gain"] == pytest.approx(2.0, abs=0.01)


class TestIdealConversion:
    def test_matches_oracle(self, ideal_adc):
        v = np.linspace(-0.9999, 0.9999, 8001)
        result = ideal_adc.convert_samples(v)
        oracle = ideal_transfer_codes(v, 1.0, 12)
        assert np.max(np.abs(result.codes - oracle)) <= 1

    def test_monotone_transfer(self, ideal_adc):
        v = np.linspace(-1.0, 1.0, 6000)
        result = ideal_adc.convert_samples(v)
        assert np.all(np.diff(result.codes) >= 0)

    def test_dc_conversion_stable(self, ideal_adc):
        result = ideal_adc.convert(DcGenerator(level=0.3), 100)
        assert np.unique(result.codes).size == 1


class TestConvert:
    def test_output_shapes(self, nominal_capture):
        assert nominal_capture.codes.shape == (4096,)
        assert nominal_capture.stage_codes.shape == (4096, 10)
        assert nominal_capture.flash_codes.shape == (4096,)
        assert nominal_capture.sample_times.shape == (4096,)

    def test_codes_in_range(self, nominal_capture):
        assert nominal_capture.codes.min() >= 0
        assert nominal_capture.codes.max() <= 4095

    def test_full_scale_exercised(self, nominal_capture):
        """A 99.5% tone must reach near both ends of the code range."""
        assert nominal_capture.codes.min() < 40
        assert nominal_capture.codes.max() > 4055

    def test_resolution_recorded(self, nominal_capture):
        assert nominal_capture.resolution == 12

    def test_voltages_roundtrip(self, nominal_capture):
        v = nominal_capture.voltages(1.0)
        assert v.min() >= -1.0 and v.max() <= 1.0

    def test_noise_seed_reproducible(self, paper_adc):
        tone = SineGenerator.coherent(10e6, 110e6, 512, amplitude=0.9)
        a = paper_adc.convert(tone, 512, noise_seed=5)
        b = paper_adc.convert(tone, 512, noise_seed=5)
        assert np.array_equal(a.codes, b.codes)

    def test_noise_seed_varies(self, paper_adc):
        tone = SineGenerator.coherent(10e6, 110e6, 512, amplitude=0.9)
        a = paper_adc.convert(tone, 512, noise_seed=5)
        b = paper_adc.convert(tone, 512, noise_seed=6)
        assert not np.array_equal(a.codes, b.codes)

    def test_rejects_nonpositive_count(self, paper_adc):
        with pytest.raises(ConfigurationError):
            paper_adc.convert(DcGenerator(0.0), 0)

    def test_convert_samples_rejects_bad_shape(self, paper_adc):
        with pytest.raises(ConfigurationError):
            paper_adc.convert_samples(np.zeros((4, 4)))

    def test_worst_settling_error_small_at_nominal(self, paper_adc):
        assert paper_adc.worst_settling_error() < 2e-4

    def test_settling_error_grows_with_rate(self, paper_config):
        slow = PipelineAdc(paper_config, 40e6, seed=1)
        fast = PipelineAdc(paper_config, 150e6, seed=1)
        assert fast.worst_settling_error() > 10 * slow.worst_settling_error()


class TestImpairmentOrdering:
    def test_each_impairment_costs_enob(self, paper_config, ideal_config):
        """The ideal converter must beat the paper model, and the paper
        model must be within the physical band (9.5..11 bits)."""
        from repro.signal.spectrum import SpectrumAnalyzer

        analyzer = SpectrumAnalyzer()
        tone = SineGenerator.coherent(10e6, 110e6, 4096, amplitude=0.995)

        ideal = PipelineAdc(ideal_config, 110e6, seed=1)
        paper = PipelineAdc(paper_config, 110e6, seed=1)
        enob_ideal = analyzer.analyze(
            ideal.convert(tone, 4096).codes, 110e6
        ).enob_bits
        enob_paper = analyzer.analyze(
            paper.convert(tone, 4096).codes, 110e6
        ).enob_bits
        assert enob_ideal > 11.5
        assert 9.5 < enob_paper < 11.0
        assert enob_ideal > enob_paper + 1.0
