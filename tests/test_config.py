"""Tests for repro.core.config."""

import pytest

from repro.analog.clocking import ClockingScheme
from repro.core.config import AdcConfig, ScalingPlan, StageConfig, SwitchStyle
from repro.errors import ConfigurationError


class TestScalingPlan:
    def test_paper_plan(self):
        plan = ScalingPlan.paper()
        assert plan.factors[0] == 1.0
        assert plan.factors[1] == pytest.approx(2 / 3)
        assert all(f == pytest.approx(1 / 3) for f in plan.factors[2:])
        assert plan.n_stages == 10

    def test_paper_plan_total(self):
        """Sum 1 + 2/3 + 8/3 = 13/3: the scaled chain costs 43% of an
        unscaled one."""
        assert ScalingPlan.paper().total() == pytest.approx(13 / 3)

    def test_uniform_plan(self):
        plan = ScalingPlan.uniform(10)
        assert plan.total() == pytest.approx(10.0)

    def test_rejects_increasing_factors(self):
        with pytest.raises(ConfigurationError):
            ScalingPlan(factors=(1.0, 0.5, 0.8))

    def test_rejects_stage1_not_unity(self):
        with pytest.raises(ConfigurationError):
            ScalingPlan(factors=(0.9, 0.5))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ScalingPlan(factors=())


class TestAdcConfig:
    def test_architecture_resolves_12_bits(self, paper_config):
        assert paper_config.resolution == 12
        assert paper_config.n_stages == 10
        assert paper_config.flash_bits == 2
        assert paper_config.n_codes == 4096

    def test_lsb(self, paper_config):
        assert paper_config.lsb == pytest.approx(2.0 / 4096)

    def test_rejects_inconsistent_architecture(self):
        with pytest.raises(ConfigurationError):
            AdcConfig(n_stages=9, scaling=ScalingPlan.paper(9))

    def test_rejects_mismatched_scaling_length(self):
        with pytest.raises(ConfigurationError):
            AdcConfig(scaling=ScalingPlan.paper(8))

    def test_rejects_bad_record_threshold(self):
        with pytest.raises(ConfigurationError):
            AdcConfig(per_die_record_threshold=0)
        assert AdcConfig(per_die_record_threshold=1).per_die_record_threshold == 1

    def test_stage_configs_follow_plan(self, paper_config):
        stages = paper_config.stage_configs()
        assert len(stages) == 10
        assert stages[0].unit_capacitance == pytest.approx(0.225e-12)
        assert stages[1].unit_capacitance == pytest.approx(0.15e-12)
        assert stages[2].unit_capacitance == pytest.approx(0.075e-12)

    def test_stage_loads_look_ahead(self, paper_config):
        """Each stage drives the *next* stage's sampling caps."""
        stages = paper_config.stage_configs()
        assert stages[0].load_capacitance > stages[1].load_capacitance
        # stage 2..9 all drive 1/3-scaled stages: equal loads
        assert stages[2].load_capacitance == pytest.approx(
            stages[5].load_capacitance
        )

    def test_mirror_ratios_follow_plan(self, paper_config):
        ratios = paper_config.mirror_ratios()
        assert ratios[0] == pytest.approx(20.0)
        assert ratios[1] == pytest.approx(20.0 * 2 / 3)

    def test_resolved_bias_uses_plan_ratios(self, paper_config):
        bias = paper_config.resolved_bias()
        assert bias.mirror_ratios == paper_config.mirror_ratios()

    def test_sampling_capacitance_property(self, paper_config):
        stage = paper_config.stage_configs()[0]
        assert stage.sampling_capacitance == pytest.approx(0.45e-12)


class TestBuilders:
    def test_ideal_disables_impairments(self, ideal_config):
        assert not ideal_config.include_thermal_noise
        assert not ideal_config.include_jitter
        assert not ideal_config.include_mismatch
        assert not ideal_config.include_settling
        assert not ideal_config.include_tracking
        assert ideal_config.comparator.offset_sigma == 0.0
        assert ideal_config.clock.aperture_jitter_rms == 0.0

    def test_paper_default_enables_everything(self, paper_config):
        assert paper_config.include_thermal_noise
        assert paper_config.include_settling
        assert paper_config.switch_style is SwitchStyle.BULK_SWITCHED

    def test_with_switch_style(self, paper_config):
        new = paper_config.with_switch_style(SwitchStyle.BOOTSTRAPPED)
        assert new.switch_style is SwitchStyle.BOOTSTRAPPED
        assert paper_config.switch_style is SwitchStyle.BULK_SWITCHED

    def test_with_scaling_checks_length(self, paper_config):
        with pytest.raises(ConfigurationError):
            paper_config.with_scaling(ScalingPlan.uniform(5))

    def test_with_clocking_scheme(self, paper_config):
        new = paper_config.with_clocking_scheme(ClockingScheme.NON_OVERLAP)
        assert new.clock.scheme is ClockingScheme.NON_OVERLAP

    def test_with_fixed_bias(self, paper_config):
        new = paper_config.with_fixed_bias(design_rate=120e6)
        assert new.use_fixed_bias
        assert new.fixed_bias.design_rate == pytest.approx(120e6)


class TestStageConfig:
    def test_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            StageConfig(
                index=-1,
                scale=1.0,
                unit_capacitance=1e-13,
                mirror_ratio=20.0,
                input_pair_width=40e-6,
                compensation_capacitance=1e-12,
                load_capacitance=1e-13,
            )

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ConfigurationError):
            StageConfig(
                index=0,
                scale=0.0,
                unit_capacitance=1e-13,
                mirror_ratio=20.0,
                input_pair_width=40e-6,
                compensation_capacitance=1e-12,
                load_capacitance=1e-13,
            )
