"""Tests for repro.signal.metrics."""

import pytest

from repro.signal.metrics import HarmonicComponent, SpectrumMetrics


def make_metrics(signal=0.5, noise=1e-7, distortion=2e-8, spur=1e-8):
    return SpectrumMetrics.from_powers(
        sample_rate=110e6,
        fundamental_frequency=10e6,
        fundamental_bin=373,
        signal_power=signal,
        full_scale_power=0.5,
        noise_power=noise,
        distortion_power=distortion,
        worst_spur_power=spur,
        worst_spur_bin=1119,
        harmonics=(
            HarmonicComponent(order=3, bin_index=1119, power_dbc=-70.0),
        ),
        n_noise_bins=2000,
    )


class TestFromPowers:
    def test_snr(self):
        m = make_metrics()
        assert m.snr_db == pytest.approx(10 * 6.699, abs=0.1)

    def test_sndr_below_snr(self):
        m = make_metrics()
        assert m.sndr_db < m.snr_db

    def test_sfdr(self):
        m = make_metrics()
        assert m.sfdr_db == pytest.approx(10 * 7.699, abs=0.1)

    def test_thd_negative(self):
        assert make_metrics().thd_db < 0

    def test_enob_from_sndr(self):
        m = make_metrics()
        assert m.enob_bits == pytest.approx((m.sndr_db - 1.76) / 6.02)

    def test_full_scale_signal_is_0dbfs(self):
        m = make_metrics(signal=0.5)
        assert m.signal_power_dbfs == pytest.approx(0.0, abs=1e-9)

    def test_noise_floor_below_noise_total(self):
        m = make_metrics()
        assert m.noise_floor_dbc < -m.snr_db

    def test_zero_powers_do_not_crash(self):
        m = make_metrics(noise=0.0, distortion=0.0, spur=0.0)
        assert m.snr_db > 200  # bounded by the tiny-floor guard

    def test_summary_contains_all_metrics(self):
        text = make_metrics().summary()
        for token in ("SNR", "SNDR", "SFDR", "THD", "ENOB"):
            assert token in text
