"""Tests for repro.units."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestEng:
    def test_milliwatts(self):
        assert units.eng(97e-3, "W") == "97mW"

    def test_picofarads(self):
        assert units.eng(1.6e-12, "F") == "1.6pF"

    def test_megahertz(self):
        assert units.eng(110e6, "Hz") == "110MHz"

    def test_zero(self):
        assert units.eng(0.0, "V") == "0V"

    def test_negative(self):
        assert units.eng(-2.5e-3, "A") == "-2.5mA"

    def test_unity(self):
        assert units.eng(1.8, "V") == "1.8V"

    def test_infinite(self):
        assert "inf" in units.eng(math.inf, "V")

    def test_below_atto_falls_back(self):
        text = units.eng(3e-21, "F")
        assert "e-21" in text

    @given(st.floats(min_value=1e-17, max_value=1e13))
    def test_roundtrip_magnitude(self, value):
        """The rendered mantissa always lands in [1, 1000)."""
        text = units.eng(value, "", digits=6)
        mantissa = float(
            "".join(c for c in text if (c.isdigit() or c in ".-e+"))
            .rstrip("e")
        )
        assert 0.999 <= abs(mantissa) < 1000.001


class TestDb:
    def test_db_power(self):
        assert units.db(100.0) == pytest.approx(20.0)

    def test_db_amplitude(self):
        assert units.db_amplitude(10.0) == pytest.approx(20.0)

    def test_undb_inverts_db(self):
        assert units.undb(units.db(42.0)) == pytest.approx(42.0)

    def test_undb_amplitude_inverts(self):
        assert units.undb_amplitude(
            units.db_amplitude(0.31)
        ) == pytest.approx(0.31)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.db(0.0)

    def test_db_amplitude_rejects_negative(self):
        with pytest.raises(ValueError):
            units.db_amplitude(-1.0)

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_db_monotone(self, ratio):
        assert units.undb(units.db(ratio)) == pytest.approx(ratio, rel=1e-9)


class TestEnob:
    def test_paper_enob(self):
        """The paper's SNDR of 64.2 dB is ENOB 10.4."""
        assert units.enob_from_sndr(64.2) == pytest.approx(10.37, abs=0.01)

    def test_ten_bits_is_62db(self):
        """The paper equates 62 dB SNDR with 10 effective bits."""
        assert units.sndr_from_enob(10.0) == pytest.approx(61.96, abs=0.01)

    @given(st.floats(min_value=0, max_value=120))
    def test_roundtrip(self, sndr):
        assert units.sndr_from_enob(
            units.enob_from_sndr(sndr)
        ) == pytest.approx(sndr, abs=1e-9)


class TestTemperature:
    def test_room(self):
        assert units.celsius_to_kelvin(27.0) == pytest.approx(300.15)

    def test_rejects_below_absolute_zero(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(-300.0)

    def test_kt_room_value(self):
        assert units.KT_ROOM == pytest.approx(4.14e-21, rel=0.01)
