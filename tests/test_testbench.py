"""Tests for repro.evaluation.testbench."""

import pytest

from repro.errors import ConfigurationError
from repro.evaluation.testbench import (
    DynamicTestbench,
    PowerTestbench,
    StaticTestbench,
)


@pytest.fixture(scope="module")
def dynamic(paper_config):
    return DynamicTestbench(paper_config, n_samples=2048, die_seed=1)


class TestDynamicTestbench:
    def test_nominal_point_in_band(self, dynamic):
        metrics = dynamic.measure(110e6, 10e6)
        assert 64 < metrics.snr_db < 70
        assert 61 < metrics.sndr_db < 68

    def test_rate_sweep_caps_tone_frequency(self, dynamic):
        points = dynamic.measure_rate_sweep([20e6, 110e6])
        # At 20 MS/s the 10 MHz tone would be super-Nyquist; the bench
        # must have dropped it below 0.23 * rate.
        assert points[0].fundamental_frequency < 0.25 * 20e6
        assert points[1].fundamental_frequency == pytest.approx(10e6, rel=0.05)

    def test_frequency_sweep_lengths(self, dynamic):
        points = dynamic.measure_frequency_sweep([5e6, 40e6], 110e6)
        assert len(points) == 2

    def test_rejects_tiny_records(self, paper_config):
        with pytest.raises(ConfigurationError):
            DynamicTestbench(paper_config, n_samples=64)

    def test_rejects_bad_amplitude(self, paper_config):
        with pytest.raises(ConfigurationError):
            DynamicTestbench(paper_config, amplitude_fraction=1.5)


class TestStaticTestbench:
    def test_linearity_in_band(self, paper_config):
        bench = StaticTestbench(paper_config, samples_per_code=16, die_seed=1)
        result = bench.measure(110e6)
        assert result.monotonic
        assert max(abs(result.dnl_min), abs(result.dnl_max)) < 1.5
        assert max(abs(result.inl_min), abs(result.inl_max)) < 2.5

    def test_rejects_thin_sampling(self, paper_config):
        with pytest.raises(ConfigurationError):
            StaticTestbench(paper_config, samples_per_code=4)

    def test_rejects_bad_overdrive(self, paper_config):
        with pytest.raises(ConfigurationError):
            StaticTestbench(paper_config, overdrive=0.5)


class TestPowerTestbench:
    def test_measure(self, paper_config):
        bench = PowerTestbench(paper_config)
        assert bench.measure(110e6).total == pytest.approx(97e-3, rel=0.05)

    def test_sweep(self, paper_config):
        bench = PowerTestbench(paper_config)
        series = bench.measure_sweep([20e6, 110e6])
        assert series[0].total < series[1].total
