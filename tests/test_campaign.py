"""Tests for the corner-batched PVT campaign engine.

The load-bearing contracts:

* **Corner-batched equivalence** — every (corner, temperature, die)
  cell of a vectorized (points x dies) batch is bit-exact with the
  serial :class:`DynamicTestbench` on the same operating point and die
  seed, regardless of cell chunking and worker count.
* **Resume determinism** — a campaign interrupted mid-grid and resumed
  from its ledger produces the identical sign-off report to a
  straight-through run, recomputing nothing already checkpointed.
"""

import json

import numpy as np
import pytest

from repro.core.adc_array import AdcArray
from repro.core.config import AdcConfig
from repro.errors import ConfigurationError
from repro.evaluation.testbench import DynamicTestbench
from repro.runtime.campaign import (
    CAMPAIGN_LEDGER_SCHEMA,
    CampaignLedger,
    CampaignSpec,
    run_campaign,
)
from repro.signal.generators import SineGenerator
from repro.technology.corners import Corner, OperatingPointArray, pvt_grid
from repro.technology.montecarlo import ProcessSampleArray


SMALL = dict(
    corners=(Corner.TT, Corner.SS),
    temperatures_c=(27.0, 125.0),
    n_dies=2,
    seed=99,
    n_samples=512,
)


@pytest.fixture(scope="module")
def small_spec():
    return CampaignSpec(**SMALL)


@pytest.fixture(scope="module")
def vectorized_report(small_spec):
    return run_campaign(small_spec, engine="vectorized")


class TestGridPlanning:
    def test_pvt_grid_is_corner_major(self, technology):
        points = pvt_grid(
            technology=technology,
            corners=(Corner.TT, Corner.FF),
            temperatures_c=(-40.0, 125.0),
        )
        assert [(p.corner, p.temperature_c) for p in points] == [
            (Corner.TT, -40.0),
            (Corner.TT, 125.0),
            (Corner.FF, -40.0),
            (Corner.FF, 125.0),
        ]

    def test_pvt_grid_rejects_empty_axes(self, technology):
        with pytest.raises(ConfigurationError):
            pvt_grid(technology=technology, corners=())
        with pytest.raises(ConfigurationError):
            pvt_grid(technology=technology, temperatures_c=())

    def test_operating_point_array_from_grid(self, technology):
        points = OperatingPointArray.from_grid(
            technology=technology,
            corners=(Corner.SS,),
            temperatures_c=(27.0, 125.0),
        )
        assert len(points) == 2
        assert points.corners == (Corner.SS, Corner.SS)
        assert points.temperature_k.shape == (2, 1)

    def test_sample_array_from_grid_is_point_major(self, technology):
        points = pvt_grid(
            technology=technology,
            corners=(Corner.TT, Corner.SS),
            temperatures_c=(27.0,),
        )
        stacked = ProcessSampleArray.from_grid(points, [7, 8])
        assert len(stacked) == 4
        assert [s.seed for s in stacked] == [7, 8, 7, 8]
        assert [s.operating_point.corner for s in stacked] == [
            Corner.TT,
            Corner.TT,
            Corner.SS,
            Corner.SS,
        ]
        assert [s.index for s in stacked] == [0, 1, 2, 3]

    def test_cells_match_stacked_grid_population(
        self, small_spec, paper_config
    ):
        """CampaignSpec and the stacked constructors share one order."""
        points = small_spec.points(paper_config.technology)
        stacked = ProcessSampleArray.from_grid(
            points, list(small_spec.resolved_die_seeds())
        )
        assert len(stacked) == small_spec.n_cells
        for cell, sample in zip(small_spec.cells(), stacked):
            assert cell.index == sample.index
            assert cell.die_seed == sample.seed
            assert (
                cell.operating_point(paper_config.technology)
                == sample.operating_point
            )

    def test_spec_cells_cover_grid(self, small_spec):
        cells = small_spec.cells()
        assert len(cells) == small_spec.n_cells == 8
        assert [c.index for c in cells] == list(range(8))
        seeds = small_spec.resolved_die_seeds()
        assert {c.die_seed for c in cells} == set(seeds)

    def test_explicit_die_seeds(self):
        spec = CampaignSpec(**{**SMALL, "die_seeds": (1, 2)})
        assert spec.resolved_die_seeds() == (1, 2)
        with pytest.raises(ConfigurationError):
            CampaignSpec(**{**SMALL, "die_seeds": (1,)})

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(**{**SMALL, "corners": ()})
        with pytest.raises(ConfigurationError):
            CampaignSpec(**{**SMALL, "n_dies": 0})
        with pytest.raises(ConfigurationError):
            CampaignSpec(**{**SMALL, "n_samples": 64})


class TestCornerBatchedEquivalence:
    """ISSUE acceptance: vectorized (points x dies) == serial testbench."""

    def test_grid_codes_bitwise_equal_per_cell(self, paper_config):
        """The raw output codes of a mixed-PVT batch match per cell."""
        points = pvt_grid(
            technology=paper_config.technology,
            corners=(Corner.TT, Corner.SS),
            temperatures_c=(-40.0, 125.0),
        )
        stacked = ProcessSampleArray.from_grid(points, [3, 11])
        array = AdcArray(paper_config, 110e6, stacked)
        tone = SineGenerator.coherent(10e6, 110e6, 256, amplitude=0.995)
        batch = array.convert(tone, 256)
        for cell, sample in enumerate(stacked):
            bench = DynamicTestbench(
                paper_config,
                n_samples=256,
                die_seed=sample.seed,
                operating_point=sample.operating_point,
            )
            solo = bench.build(110e6).convert(tone, 256)
            assert np.array_equal(batch.codes[cell], solo.codes)

    def test_campaign_metrics_match_serial_testbench(
        self, small_spec, vectorized_report, paper_config
    ):
        """Every campaign cell reproduces DynamicTestbench.measure."""
        assert vectorized_report.complete
        for cell in vectorized_report.cells:
            plan = small_spec.cells()[cell.index]
            bench = DynamicTestbench(
                paper_config,
                n_samples=small_spec.n_samples,
                die_seed=plan.die_seed,
                operating_point=plan.operating_point(
                    paper_config.technology
                ),
            )
            solo = bench.measure(
                small_spec.conversion_rate, small_spec.input_frequency
            )
            # Codes are bit-exact; the metrics pass through a batched
            # FFT, so association order may differ by ulps.
            assert cell.sndr_db == pytest.approx(solo.sndr_db, rel=1e-9)
            assert cell.snr_db == pytest.approx(solo.snr_db, rel=1e-9)
            assert cell.sfdr_db == pytest.approx(solo.sfdr_db, rel=1e-9)
            assert cell.enob_bits == pytest.approx(solo.enob_bits, rel=1e-9)

    def test_pool_engine_matches_vectorized(
        self, small_spec, vectorized_report
    ):
        pool = run_campaign(small_spec, engine="pool")
        for a, b in zip(pool.cells, vectorized_report.cells):
            assert (a.index, a.seed, a.corner, a.temperature_c) == (
                b.index,
                b.seed,
                b.corner,
                b.temperature_c,
            )
            assert b.sndr_db == pytest.approx(a.sndr_db, rel=1e-9)

    def test_cell_chunk_invariance(self, small_spec, vectorized_report):
        for chunk in (1, 3):
            report = run_campaign(
                small_spec, engine="vectorized", cell_chunk=chunk
            )
            for a, b in zip(vectorized_report.cells, report.cells):
                assert b.sndr_db == pytest.approx(a.sndr_db, rel=1e-12)

    def test_worker_invariance(self, small_spec, vectorized_report):
        report = run_campaign(
            small_spec, engine="vectorized", cell_chunk=2, workers=2
        )
        for a, b in zip(vectorized_report.cells, report.cells):
            assert b.sndr_db == pytest.approx(a.sndr_db, rel=1e-12)

    def test_engine_validation(self, small_spec):
        with pytest.raises(ConfigurationError):
            run_campaign(small_spec, engine="turbo")
        with pytest.raises(ConfigurationError):
            run_campaign(small_spec, engine="pool", cell_chunk=4)
        with pytest.raises(ConfigurationError):
            run_campaign(small_spec, cell_chunk=0)


class TestLedgerResume:
    """ISSUE acceptance: interrupt mid-grid, resume, identical report."""

    @staticmethod
    def _tables(report):
        """The deterministic slice of a report (no wall times)."""
        return (
            [c for c in report.cells],
            report.corner_rows(),
            report.signoff().render(),
        )

    def test_resume_after_interrupt_is_identical(
        self, small_spec, vectorized_report, tmp_path
    ):
        ledger = tmp_path / "run.jsonl"

        class Interrupt(Exception):
            pass

        seen = 0

        def bomb(update):
            nonlocal seen
            seen += 1
            if seen == 2:  # two chunks checkpointed, then the "kill"
                raise Interrupt()

        with pytest.raises(Interrupt):
            run_campaign(
                small_spec,
                engine="vectorized",
                cell_chunk=2,
                ledger_path=ledger,
                progress=bomb,
            )
        checkpointed = len(ledger.read_text().splitlines()) - 1
        assert 0 < checkpointed < small_spec.n_cells

        resumed = run_campaign(
            small_spec,
            engine="vectorized",
            cell_chunk=3,  # different chunking on purpose
            ledger_path=ledger,
            resume=True,
        )
        assert resumed.resumed_cells == checkpointed
        assert resumed.complete
        assert self._tables(resumed) == self._tables(vectorized_report)
        # Only the remaining cells were dispatched...
        assert resumed.batch.n_tasks == small_spec.n_cells - checkpointed
        # ...and the ledger now holds the full grid for the next resume.
        fully = run_campaign(
            small_spec, engine="pool", ledger_path=ledger, resume=True
        )
        assert fully.resumed_cells == small_spec.n_cells
        assert fully.batch.n_tasks == 0
        assert self._tables(fully) == self._tables(vectorized_report)

    def test_pool_engine_partial_resume(self, small_spec, tmp_path):
        """A pool-engine resume merges by grid index, not task position."""
        ledger = tmp_path / "run.jsonl"

        class Interrupt(Exception):
            pass

        def bomb(update):
            if update.done == 3:  # three cells checkpointed, then die
                raise Interrupt()

        with pytest.raises(Interrupt):
            run_campaign(
                small_spec, engine="pool", ledger_path=ledger, progress=bomb
            )
        resumed = run_campaign(
            small_spec, engine="pool", ledger_path=ledger, resume=True
        )
        assert resumed.resumed_cells == 3
        assert resumed.complete
        assert [c.index for c in resumed.cells] == list(
            range(small_spec.n_cells)
        )
        straight = run_campaign(small_spec, engine="pool")
        assert self._tables(resumed) == self._tables(straight)
        # Fresh outcomes carry grid indices and die seeds.
        fresh_indices = {o.index for o in resumed.batch.outcomes}
        assert fresh_indices == set(range(3, small_spec.n_cells))
        assert all(o.seed is not None for o in resumed.batch.outcomes)

    def test_ledger_rejects_mismatched_campaign(
        self, small_spec, tmp_path
    ):
        ledger = tmp_path / "run.jsonl"
        run_campaign(small_spec, ledger_path=ledger)
        other = CampaignSpec(**{**SMALL, "n_samples": 1024})
        with pytest.raises(ConfigurationError):
            run_campaign(other, ledger_path=ledger, resume=True)

    def test_ledger_tolerates_torn_tail(self, small_spec, tmp_path):
        ledger = tmp_path / "run.jsonl"
        run_campaign(small_spec, ledger_path=ledger)
        text = ledger.read_text()
        ledger.write_text(text + '{"index": 5, "corner"')  # torn write
        report = run_campaign(small_spec, ledger_path=ledger, resume=True)
        assert report.complete
        assert report.resumed_cells == small_spec.n_cells

    def test_ledger_rejects_corrupt_middle(self, small_spec, tmp_path):
        ledger = tmp_path / "run.jsonl"
        run_campaign(small_spec, ledger_path=ledger)
        lines = ledger.read_text().splitlines()
        lines[2] = "not json"
        ledger.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError):
            CampaignLedger(ledger).load(
                small_spec.fingerprint(AdcConfig.paper_default())
            )

    def test_fresh_run_truncates_stale_ledger(self, small_spec, tmp_path):
        ledger = tmp_path / "run.jsonl"
        run_campaign(small_spec, ledger_path=ledger)
        report = run_campaign(small_spec, ledger_path=ledger)  # no resume
        assert report.resumed_cells == 0
        header = json.loads(ledger.read_text().splitlines()[0])
        assert header["schema"] == CAMPAIGN_LEDGER_SCHEMA


class TestLedgerValidation:
    """Adversarial ledgers are rejected, never silently accepted."""

    @pytest.fixture(scope="class")
    def fingerprint(self, small_spec, paper_config):
        return small_spec.fingerprint(paper_config)

    @pytest.fixture()
    def written(self, small_spec, tmp_path):
        """A completed whole-grid ledger in a fresh tmp dir."""
        ledger = tmp_path / "run.jsonl"
        run_campaign(small_spec, ledger_path=ledger)
        return ledger

    def test_rejects_out_of_range_index(
        self, written, fingerprint, small_spec
    ):
        record = json.loads(written.read_text().splitlines()[1])
        record["index"] = small_spec.n_cells  # one past the grid
        lines = written.read_text().splitlines()
        lines.append(json.dumps(record))
        written.write_text("\n".join(lines) + "\n")
        position = len(lines)
        with pytest.raises(
            ConfigurationError,
            match=(
                rf"line {position}: cell index {small_spec.n_cells} "
                rf"outside \[0, {small_spec.n_cells}\)"
            ),
        ):
            CampaignLedger(written).load(fingerprint)

    def test_rejects_duplicate_index(self, written, fingerprint):
        lines = written.read_text().splitlines()
        lines.append(lines[1])  # replay the first record verbatim
        written.write_text("\n".join(lines) + "\n")
        duplicated = json.loads(lines[1])["index"]
        with pytest.raises(
            ConfigurationError,
            match=(
                rf"line {len(lines)}: duplicate cell index {duplicated}"
            ),
        ):
            CampaignLedger(written).load(fingerprint)

    def test_tolerates_torn_tail_with_trailing_newline(
        self, written, fingerprint, small_spec
    ):
        """A torn record plus trailing blank lines is still a torn tail."""
        written.write_text(
            written.read_text() + '{"index": 5, "corner"\n\n\n'
        )
        records = CampaignLedger(written).load(fingerprint)
        assert len(records) == small_spec.n_cells

    def test_rejects_torn_record_mid_file(self, written, fingerprint):
        lines = written.read_text().splitlines()
        lines.insert(3, '{"index": 5, "corner"')  # valid records follow
        written.write_text("\n".join(lines) + "\n")
        with pytest.raises(
            ConfigurationError, match="line 4 is corrupt"
        ):
            CampaignLedger(written).load(fingerprint)

    def test_rejects_foreign_fingerprint(self, written, paper_config):
        other = CampaignSpec(**{**SMALL, "n_samples": 1024})
        with pytest.raises(
            ConfigurationError, match="different campaign"
        ):
            CampaignLedger(written).load(other.fingerprint(paper_config))

    def test_record_fsyncs_each_batch(
        self, tmp_path, fingerprint, vectorized_report, monkeypatch
    ):
        import repro.runtime.campaign as campaign_module

        synced = []
        real_fsync = campaign_module.os.fsync

        def counting_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(campaign_module.os, "fsync", counting_fsync)
        ledger = CampaignLedger(tmp_path / "synced.jsonl")
        ledger.start(fingerprint)
        ledger.record(vectorized_report.cells[:2])
        ledger.record(vectorized_report.cells[2:4])
        assert len(synced) == 3  # header + one per append batch

        synced.clear()
        lazy = CampaignLedger(tmp_path / "lazy.jsonl", fsync=False)
        lazy.start(fingerprint)
        lazy.record(vectorized_report.cells[:2])
        assert synced == []
        assert len(lazy.load(fingerprint)) == 2

    def test_shard_header_roundtrip(
        self, tmp_path, fingerprint, vectorized_report
    ):
        ledger = CampaignLedger(tmp_path / "shard.jsonl")
        ledger.start(fingerprint, cell_range=(0, 4))
        ledger.record(vectorized_report.cells[:4])
        contents = ledger.read()
        assert contents.cell_range == (0, 4)
        assert sorted(contents.records) == [0, 1, 2, 3]
        # A resume expecting a different range (or none) is refused.
        with pytest.raises(
            ConfigurationError, match="refusing to resume"
        ):
            ledger.load(fingerprint)
        with pytest.raises(
            ConfigurationError, match="refusing to resume"
        ):
            ledger.load(fingerprint, cell_range=(4, 8))
        assert len(ledger.load(fingerprint, cell_range=(0, 4))) == 4

    def test_rejects_shard_record_outside_declared_range(
        self, tmp_path, fingerprint, vectorized_report
    ):
        ledger = CampaignLedger(tmp_path / "shard.jsonl")
        ledger.start(fingerprint, cell_range=(0, 4))
        ledger.record((vectorized_report.cells[5],))
        with pytest.raises(
            ConfigurationError, match=r"cell index 5 outside \[0, 4\)"
        ):
            ledger.read()

    def test_rejects_shard_range_outside_grid(
        self, tmp_path, fingerprint, small_spec
    ):
        ledger = CampaignLedger(tmp_path / "shard.jsonl")
        ledger.start(fingerprint, cell_range=(4, small_spec.n_cells + 1))
        with pytest.raises(
            ConfigurationError, match="outside the campaign grid"
        ):
            ledger.read()


class TestReport:
    def test_report_document(self, vectorized_report, small_spec):
        document = json.loads(vectorized_report.to_json())
        assert document["engine"] == "vectorized"
        assert document["n_cells"] == small_spec.n_cells
        assert len(document["cells"]) == small_spec.n_cells
        assert set(document["signoff"]) == {
            "SNR (f_in=10MHz)",
            "SNDR (f_in=10MHz)",
            "SFDR (f_in=10MHz)",
            "ENOB",
        }
        sndr = document["signoff"]["SNDR (f_in=10MHz)"]
        assert sndr["min"] <= sndr["typ"] <= sndr["max"]

    def test_render_names_worst_cell(self, vectorized_report):
        text = vectorized_report.render()
        assert "worst cell:" in text
        assert "Electrical characteristics" in text

    def test_signoff_ranges_cover_cells(self, vectorized_report):
        sndrs = [c.sndr_db for c in vectorized_report.cells]
        by_name = {
            line.parameter: line
            for line in vectorized_report.signoff().lines
        }
        line = by_name["SNDR (f_in=10MHz)"]
        assert line.minimum == pytest.approx(min(sndrs))
        assert line.maximum == pytest.approx(max(sndrs))


class TestCampaignCli:
    def test_parser_defaults(self):
        from repro.cli import build_campaign_parser

        args = build_campaign_parser().parse_args([])
        assert args.corners == "all"
        assert args.dies == 1
        assert args.engine == "vectorized"
        assert not args.resume

    def test_cli_run_and_resume(self, capsys, tmp_path):
        from repro.cli import main

        ledger = tmp_path / "run.jsonl"
        out = tmp_path / "campaign.json"
        base = [
            "campaign",
            "--corners",
            "tt,ss",
            "--temps",
            "27",
            "--dies",
            "2",
            "--fft-points",
            "512",
            "--ledger",
            str(ledger),
        ]
        assert main(base + ["--json", str(out)]) == 0
        first = capsys.readouterr().out
        assert "PVT campaign" in first
        document = json.loads(out.read_text())
        assert document["n_cells"] == 4
        assert main(base + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "4 cell(s) resumed from ledger" in second

    def test_cli_rejects_unknown_corner(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--corners", "zz"]) == 2
        assert "unknown corner" in capsys.readouterr().err

    def test_cli_resume_requires_ledger(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--resume"]) == 2
        assert "--resume needs --ledger" in capsys.readouterr().err
