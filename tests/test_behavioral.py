"""Tests for repro.core.behavioral."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.behavioral import IdealAdc, ideal_transfer_codes
from repro.errors import ConfigurationError


class TestIdealTransfer:
    def test_endpoints(self):
        codes = ideal_transfer_codes(np.array([-1.0, 0.9999]), 1.0, 12)
        assert codes[0] == 0
        assert codes[1] == 4095

    def test_clipping(self):
        codes = ideal_transfer_codes(np.array([-5.0, 5.0]), 1.0, 12)
        assert list(codes) == [0, 4095]

    def test_mid_rise(self):
        codes = ideal_transfer_codes(np.array([-1e-12, 1e-12]), 1.0, 12)
        assert list(codes) == [2047, 2048]

    def test_uniform_bins(self):
        v = np.linspace(-1, 1 - 1e-9, 4096 * 8)
        counts = np.bincount(ideal_transfer_codes(v, 1.0, 12), minlength=4096)
        assert counts.min() == counts.max()

    @given(st.floats(min_value=-2, max_value=2))
    def test_monotone(self, v):
        a = ideal_transfer_codes(np.array([v]), 1.0, 12)[0]
        b = ideal_transfer_codes(np.array([v + 1e-6]), 1.0, 12)[0]
        assert b >= a

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            ideal_transfer_codes(np.array([0.0]), -1.0, 12)
        with pytest.raises(ConfigurationError):
            ideal_transfer_codes(np.array([0.0]), 1.0, 0)


class TestIdealAdc:
    def test_lsb(self):
        assert IdealAdc().lsb == pytest.approx(2 / 4096)

    def test_reconstruct_inverts_within_half_lsb(self):
        adc = IdealAdc()
        v = np.linspace(-0.999, 0.999, 997)
        codes = adc.convert_voltages(v)
        recovered = adc.reconstruct(codes)
        assert np.max(np.abs(recovered - v)) <= adc.lsb / 2 + 1e-12

    def test_quantization_noise(self):
        adc = IdealAdc()
        assert adc.quantization_noise_rms() == pytest.approx(
            adc.lsb / np.sqrt(12)
        )

    def test_quantization_snr_is_74db(self):
        """The 12-bit ceiling: 6.02*12 + 1.76 = 74 dB."""
        adc = IdealAdc()
        signal_rms = adc.vref / np.sqrt(2)
        snr = 20 * np.log10(signal_rms / adc.quantization_noise_rms())
        assert snr == pytest.approx(74.0, abs=0.1)

    def test_convert_uses_signal_protocol(self):
        from repro.signal.generators import SineGenerator

        adc = IdealAdc()
        tone = SineGenerator(frequency=1e6, amplitude=0.5)
        codes = adc.convert(tone, np.array([0.0, 0.25e-6]))
        assert codes[0] == 2048
        assert codes[1] > 2048
