"""Tests for repro.core.correction — the RSD redundancy algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.behavioral import ideal_transfer_codes
from repro.core.correction import DigitalCorrection
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def correction():
    return DigitalCorrection(n_stages=10, flash_bits=2)


def ideal_chain(v, thresholds_low, thresholds_high, vref=1.0):
    """Run the exact residue recursion with per-stage thresholds."""
    codes = []
    x = v
    for t_low, t_high in zip(thresholds_low, thresholds_high):
        if x < t_low:
            d = -1
        elif x > t_high:
            d = 1
        else:
            d = 0
        codes.append(d)
        x = 2 * x - d * vref
    # 2-bit flash on the final residue.
    flash = int(np.clip(np.floor((x / vref + 1.0) * 2), 0, 3))
    return codes, flash


class TestCombine:
    def test_resolution(self, correction):
        assert correction.resolution == 12
        assert correction.n_codes == 4096

    def test_full_scale_extremes(self, correction):
        low = correction.combine(np.full((1, 10), -1), np.array([0]))
        high = correction.combine(np.full((1, 10), 1), np.array([3]))
        assert low[0] == 0
        assert high[0] == 4095

    def test_mid_scale(self, correction):
        mid = correction.combine(np.zeros((1, 10), dtype=int), np.array([2]))
        assert abs(mid[0] - 2048) <= 2

    def test_matches_ideal_quantizer_with_nominal_thresholds(self, correction):
        rng = np.random.default_rng(0)
        for v in rng.uniform(-0.999, 0.999, 300):
            codes, flash = ideal_chain(
                v, [-0.25] * 10, [0.25] * 10
            )
            word = correction.combine(
                np.array([codes]), np.array([flash])
            )[0]
            oracle = ideal_transfer_codes(np.array([v]), 1.0, 12)[0]
            assert abs(word - oracle) <= 1

    @settings(max_examples=60)
    @given(
        st.floats(min_value=-0.99, max_value=0.99),
        st.lists(
            st.floats(min_value=-0.2, max_value=0.2), min_size=10, max_size=10
        ),
    )
    def test_redundancy_absorbs_threshold_errors(self, v, offsets):
        """THE property of the 1.5-bit architecture: any comparator
        threshold error smaller than Vref/4 changes the stage decisions
        but NOT the corrected output."""
        correction = DigitalCorrection(n_stages=10, flash_bits=2)
        nominal_codes, nominal_flash = ideal_chain(
            v, [-0.25] * 10, [0.25] * 10
        )
        skewed_codes, skewed_flash = ideal_chain(
            v,
            [-0.25 + o for o in offsets],
            [0.25 + o for o in offsets],
        )
        nominal = correction.combine(
            np.array([nominal_codes]), np.array([nominal_flash])
        )[0]
        skewed = correction.combine(
            np.array([skewed_codes]), np.array([skewed_flash])
        )[0]
        assert abs(int(nominal) - int(skewed)) <= 1

    def test_rejects_bad_shapes(self, correction):
        with pytest.raises(ConfigurationError):
            correction.combine(np.zeros((4, 9), dtype=int), np.zeros(4, dtype=int))
        with pytest.raises(ConfigurationError):
            correction.combine(np.zeros((4, 10), dtype=int), np.zeros(3, dtype=int))

    def test_rejects_out_of_range_codes(self, correction):
        bad = np.zeros((1, 10), dtype=int)
        bad[0, 0] = 2
        with pytest.raises(ConfigurationError):
            correction.combine(bad, np.array([0]))
        with pytest.raises(ConfigurationError):
            correction.combine(np.zeros((1, 10), dtype=int), np.array([7]))

    def test_clips_overrange(self, correction):
        """All-ones stages with max flash already hit the top code; the
        clip guards impairment-driven overflow."""
        word = correction.combine(np.full((1, 10), 1), np.array([3]))
        assert word[0] == 4095


class TestAlignment:
    def test_latency_cycles(self, correction):
        assert correction.latency_cycles == 6

    def test_align_strips_fill(self, correction):
        codes = np.zeros((20, 10), dtype=int)
        flash = np.arange(20)
        aligned_codes, aligned_flash = correction.align(codes, flash % 4)
        assert aligned_codes.shape == (14, 10)
        assert aligned_flash[0] == correction.latency_cycles % 4

    def test_align_rejects_short_streams(self, correction):
        with pytest.raises(ConfigurationError):
            correction.align(np.zeros((5, 10), dtype=int), np.zeros(5, dtype=int))


class TestDecode:
    def test_decode_to_voltage_centers(self, correction):
        v = correction.decode_to_voltage(np.array([0, 2048, 4095]), 1.0)
        lsb = 2.0 / 4096
        assert v[0] == pytest.approx(-1.0 + lsb / 2)
        assert v[1] == pytest.approx(lsb / 2)
        assert v[2] == pytest.approx(1.0 - lsb / 2)

    def test_decode_rejects_bad_vref(self, correction):
        with pytest.raises(ConfigurationError):
            correction.decode_to_voltage(np.array([0]), 0.0)
