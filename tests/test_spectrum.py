"""Tests for repro.signal.spectrum.

The analyzer is validated on synthetic records with *known* SNR/THD, so
every paper metric rests on a measurement we can trust.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.signal.spectrum import SpectrumAnalyzer, fold_bin


def coherent_tone(n=4096, cycles=373, amplitude=1.0, phase=0.3):
    t = np.arange(n)
    return amplitude * np.sin(2 * np.pi * cycles * t / n + phase)


@pytest.fixture(scope="module")
def analyzer():
    return SpectrumAnalyzer(full_scale=1.0)


class TestFoldBin:
    def test_first_zone(self):
        assert fold_bin(100, 4096) == 100

    def test_mirror(self):
        assert fold_bin(4000, 4096) == 96

    def test_multiple_wraps(self):
        assert fold_bin(3 * 373, 4096) == 1119


class TestKnownSignals:
    def test_recovers_injected_snr(self, analyzer):
        """A sine plus white noise of known power must measure at the
        injected SNR."""
        rng = np.random.default_rng(0)
        for target_snr in (50.0, 67.1, 80.0):
            noise_rms = (1 / np.sqrt(2)) / 10 ** (target_snr / 20)
            record = coherent_tone() + rng.normal(0, noise_rms, 4096)
            metrics = analyzer.analyze(record, 110e6)
            assert metrics.snr_db == pytest.approx(target_snr, abs=1.0)

    def test_recovers_injected_hd3(self, analyzer):
        """A -66 dBc third harmonic must be booked as exactly that."""
        n, cycles = 4096, 373
        t = np.arange(n)
        hd3_amplitude = 10 ** (-66 / 20)
        record = (
            np.sin(2 * np.pi * cycles * t / n)
            + hd3_amplitude * np.sin(2 * np.pi * 3 * cycles * t / n)
            + np.random.default_rng(1).normal(0, 1e-5, n)
        )
        metrics = analyzer.analyze(record, 110e6)
        hd3 = next(h for h in metrics.harmonics if h.order == 3)
        assert hd3.power_dbc == pytest.approx(-66.0, abs=0.5)
        assert metrics.thd_db == pytest.approx(-66.0, abs=0.5)
        assert metrics.sfdr_db == pytest.approx(66.0, abs=0.5)

    def test_aliased_harmonic_found(self, analyzer):
        """HD3 of a high tone folds back into the first Nyquist zone and
        must still be booked as distortion."""
        n, cycles = 4096, 1231  # 3*1231 = 3693 folds to bin 403
        t = np.arange(n)
        record = np.sin(2 * np.pi * cycles * t / n) + 1e-3 * np.sin(
            2 * np.pi * 3 * cycles * t / n
        )
        record += np.random.default_rng(2).normal(0, 1e-5, n)
        metrics = analyzer.analyze(record, 110e6)
        hd3 = next(h for h in metrics.harmonics if h.order == 3)
        assert hd3.bin_index == fold_bin(3 * cycles, n) == 403
        assert hd3.power_dbc == pytest.approx(-60.0, abs=0.7)

    def test_sndr_combines_noise_and_distortion(self, analyzer):
        rng = np.random.default_rng(3)
        n, cycles = 4096, 373
        t = np.arange(n)
        record = (
            np.sin(2 * np.pi * cycles * t / n)
            + 10 ** (-67.3 / 20) * np.sin(2 * np.pi * 3 * cycles * t / n)
            + rng.normal(0, (1 / np.sqrt(2)) * 10 ** (-67.1 / 20), n)
        )
        metrics = analyzer.analyze(record, 110e6)
        # Powers add: -67.1 dB noise + -70.3 dB(c-ish) distortion.
        assert metrics.sndr_db < metrics.snr_db
        assert metrics.sndr_db == pytest.approx(64.3, abs=1.2)

    def test_enob_consistent_with_sndr(self, analyzer):
        record = coherent_tone() + np.random.default_rng(4).normal(0, 3e-4, 4096)
        metrics = analyzer.analyze(record, 110e6)
        assert metrics.enob_bits == pytest.approx(
            (metrics.sndr_db - 1.76) / 6.02
        )

    def test_signal_power_dbfs(self):
        analyzer = SpectrumAnalyzer(full_scale=2.0)
        record = coherent_tone(amplitude=1.0) + np.random.default_rng(5).normal(
            0, 1e-5, 4096
        )
        metrics = analyzer.analyze(record, 110e6)
        assert metrics.signal_power_dbfs == pytest.approx(-6.02, abs=0.1)

    def test_fundamental_detection(self, analyzer):
        record = coherent_tone(cycles=771) + np.random.default_rng(6).normal(
            0, 1e-4, 4096
        )
        metrics = analyzer.analyze(record, 110e6)
        assert metrics.fundamental_bin == 771
        assert metrics.fundamental_frequency == pytest.approx(
            771 * 110e6 / 4096
        )

    def test_forced_fundamental_bin(self, analyzer):
        record = coherent_tone(cycles=373)
        record += np.random.default_rng(7).normal(0, 1e-5, 4096)
        metrics = analyzer.analyze(record, 110e6, fundamental_bin=373)
        assert metrics.fundamental_bin == 373

    @settings(max_examples=20)
    @given(st.integers(min_value=5, max_value=2000))
    def test_any_coherent_bin_measures_clean(self, cycles):
        if cycles % 2 == 0:
            cycles += 1
        analyzer = SpectrumAnalyzer(full_scale=1.0)
        record = coherent_tone(cycles=cycles)
        record = record + np.random.default_rng(cycles).normal(0, 1e-6, 4096)
        metrics = analyzer.analyze(record, 110e6)
        assert metrics.snr_db > 90


class TestValidation:
    def test_rejects_short_records(self, analyzer):
        with pytest.raises(AnalysisError):
            analyzer.analyze(np.zeros(8), 110e6)

    def test_rejects_bad_rate(self, analyzer):
        with pytest.raises(AnalysisError):
            analyzer.analyze(coherent_tone(), 0.0)

    def test_rejects_silent_record(self, analyzer):
        with pytest.raises(AnalysisError):
            analyzer.analyze(np.zeros(4096), 110e6)

    def test_rejects_bad_construction(self):
        with pytest.raises(AnalysisError):
            SpectrumAnalyzer(n_harmonics=1)
        with pytest.raises(AnalysisError):
            SpectrumAnalyzer(dc_exclusion_bins=0)

    def test_summary_renders(self, analyzer):
        record = coherent_tone() + np.random.default_rng(8).normal(0, 1e-4, 4096)
        text = analyzer.analyze(record, 110e6).summary()
        assert "SNR" in text and "ENOB" in text


class TestWindowedAnalysis:
    """Non-coherent captures with a low-sidelobe window — the bench path
    a user without a phase-locked source needs."""

    def test_blackman_harris_recovers_snr_non_coherent(self):
        from repro.signal.windows import Window

        rng = np.random.default_rng(11)
        n = 4096
        t = np.arange(n)
        # Deliberately non-coherent: fractional cycle count.
        frequency = 373.37 / n
        record = np.sin(2 * np.pi * frequency * t) + rng.normal(
            0, (1 / np.sqrt(2)) / 10 ** (60 / 20), n
        )
        analyzer = SpectrumAnalyzer(
            window=Window.BLACKMAN_HARRIS, full_scale=1.0
        )
        metrics = analyzer.analyze(record, 110e6)
        assert metrics.snr_db == pytest.approx(60.0, abs=1.5)

    def test_rectangular_window_fails_non_coherent(self):
        """The control: without a window, leakage wrecks the measurement
        — this is why the windowed path exists."""
        rng = np.random.default_rng(12)
        n = 4096
        t = np.arange(n)
        record = np.sin(2 * np.pi * (373.37 / n) * t) + rng.normal(
            0, 1e-4, n
        )
        metrics = SpectrumAnalyzer(full_scale=1.0).analyze(record, 110e6)
        assert metrics.snr_db < 40  # leakage booked as noise

    def test_windowed_harmonic_measurement(self):
        from repro.signal.windows import Window

        rng = np.random.default_rng(13)
        n = 4096
        t = np.arange(n)
        fundamental = 401.73 / n
        record = (
            np.sin(2 * np.pi * fundamental * t)
            + 10 ** (-60 / 20) * np.sin(2 * np.pi * 3 * fundamental * t)
            + rng.normal(0, 1e-5, n)
        )
        analyzer = SpectrumAnalyzer(
            window=Window.BLACKMAN_HARRIS, full_scale=1.0
        )
        metrics = analyzer.analyze(record, 110e6)
        hd3 = next(h for h in metrics.harmonics if h.order == 3)
        assert hd3.power_dbc == pytest.approx(-60.0, abs=1.5)

    @pytest.mark.parametrize("window_name", ["hann", "blackman-harris"])
    def test_windowed_analyze_batch_matches_per_record(self, window_name):
        """Die-batched windowed analysis equals per-record analysis.

        Non-rectangular windows sum the signal over the main lobe, so
        this exercises the multi-bin signal-region bookkeeping on every
        row of a (dies, n) block, not just the coherent single-bin path.
        """
        from repro.signal.windows import Window

        rng = np.random.default_rng(21)
        n = 2048
        t = np.arange(n)
        # Non-coherent tone: the main lobe genuinely spans several bins.
        records = np.vstack(
            [
                np.sin(2 * np.pi * (211.41 / n) * t + phase)
                + 10 ** (-55 / 20) * np.sin(2 * np.pi * 3 * (211.41 / n) * t)
                + rng.normal(0, 1e-4, n)
                for phase in (0.0, 1.1, 2.3)
            ]
        )
        analyzer = SpectrumAnalyzer(window=Window(window_name), full_scale=1.0)
        batched = analyzer.analyze_batch(records, 110e6)
        assert len(batched) == records.shape[0]
        for row, metrics in zip(records, batched):
            solo = analyzer.analyze(row, 110e6)
            assert metrics.fundamental_bin == solo.fundamental_bin
            assert metrics.snr_db == pytest.approx(solo.snr_db, rel=1e-9)
            assert metrics.sndr_db == pytest.approx(solo.sndr_db, rel=1e-9)
            assert metrics.sfdr_db == pytest.approx(solo.sfdr_db, rel=1e-9)
            assert metrics.enob_bits == pytest.approx(
                solo.enob_bits, rel=1e-9
            )
            for batched_h, solo_h in zip(metrics.harmonics, solo.harmonics):
                assert batched_h.bin_index == solo_h.bin_index
                assert batched_h.power_dbc == pytest.approx(
                    solo_h.power_dbc, rel=1e-9
                )

    def test_adc_capture_with_window_matches_coherent(self, analyzer):
        """Windowed analysis of the real converter agrees with the
        coherent measurement within a dB."""
        from repro import AdcConfig, PipelineAdc, SineGenerator
        from repro.signal.windows import Window

        adc = PipelineAdc(AdcConfig.paper_default(), 110e6, seed=1)
        tone = SineGenerator.coherent(10e6, 110e6, 4096, amplitude=0.995)
        capture = adc.convert(tone, 4096)
        coherent = SpectrumAnalyzer(full_scale=2048.0).analyze(
            capture.codes, 110e6
        )
        windowed = SpectrumAnalyzer(
            window=Window.BLACKMAN_HARRIS, full_scale=2048.0
        ).analyze(capture.codes, 110e6)
        assert windowed.sndr_db == pytest.approx(coherent.sndr_db, abs=1.2)
