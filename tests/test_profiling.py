"""The profiling layer: transparency, accounting identity, report schema.

The instrumentation's contract has three legs (see the
``repro.profiling`` module docstring): disabled mode is free and
invisible, enabled mode never changes an output code, and the
exclusive times of the recorded stages partition the profiled wall
time exactly.  These tests pin all three plus the ``repro profile``
surface.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.adc import PipelineAdc
from repro.core.adc_array import AdcArray
from repro.core.config import AdcConfig
from repro.profiling import (
    OVERLAY_STAGES,
    PROFILE_SCHEMA,
    ProfileRecorder,
    active,
    enabled,
    env_enabled,
    profile_step,
    profiled,
    record,
)
from repro.runtime.profiling import (
    ENGINES,
    PROFILE_REPORT_SCHEMA,
    WORKLOADS,
    profile_workload,
)
from repro.runtime.montecarlo import default_sampler
from repro.signal.generators import SineGenerator

RATE = 110e6


def _tone(n):
    return SineGenerator.coherent(10e6, RATE, n, amplitude=0.995)


class TestTransparency:
    """Profiling on/off is invisible in every output."""

    def test_disabled_by_default(self):
        assert not enabled()
        assert active() is None

    def test_codes_bit_exact_with_profiling_enabled(self):
        config = AdcConfig.paper_default()
        n = 256
        baseline = PipelineAdc(config, RATE, seed=7).convert(_tone(n), n)
        with profiled() as recorder:
            profiled_run = PipelineAdc(config, RATE, seed=7).convert(
                _tone(n), n
            )
        assert not enabled()  # scope restored
        np.testing.assert_array_equal(baseline.codes, profiled_run.codes)
        np.testing.assert_array_equal(
            baseline.sample_times, profiled_run.sample_times
        )
        # ...and the profiled run actually recorded the engine stages.
        stages = {stat.stage for stat in recorder.stats()}
        assert {"build", "sample", "subadc", "mdac", "noise-draw"} <= stages

    def test_array_codes_bit_exact_with_profiling_enabled(self):
        config = AdcConfig.paper_default()
        dies = default_sampler(config).sample(3, np.random.default_rng(5))
        n = 256
        baseline = AdcArray(config, RATE, dies).convert(_tone(n), n)
        with profiled():
            profiled_run = AdcArray(config, RATE, dies).convert(_tone(n), n)
        np.testing.assert_array_equal(baseline.codes, profiled_run.codes)

    def test_record_is_noop_when_disabled(self):
        with record("mdac", "settle"):
            pass
        assert active() is None

    def test_profile_step_passthrough_when_disabled(self):
        @profile_step("task", "unit")
        def work(x):
            return x + 1

        assert work(1) == 2
        with profiled() as recorder:
            assert work(2) == 3
        assert recorder.total_s("task", "unit") >= 0.0
        assert recorder.stats()[0].count == 1

    def test_env_gate_parsing(self):
        assert not env_enabled({})
        for off in ("", "0", "false", "off"):
            assert not env_enabled({"REPRO_PROFILE": off})
        assert env_enabled({"REPRO_PROFILE": "1"})


class TestAccounting:
    """Exclusive times partition the run exactly."""

    def test_self_times_sum_to_root_total(self):
        config = AdcConfig.paper_default()
        n = 512
        with profiled() as recorder:
            with recorder.record("run", "unit"):
                PipelineAdc(config, RATE, seed=3).convert(_tone(n), n)
        total = recorder.total_s("run", "unit")
        partition = sum(
            stat.self_s
            for stat in recorder.stats()
            if stat.stage not in OVERLAY_STAGES
        )
        # The identity is exact by construction (self = total - children
        # at every frame); the tolerance only absorbs float summation.
        assert partition == pytest.approx(total, rel=1e-9)
        # Inclusive >= exclusive for a stage with children.
        amplify = next(
            s
            for s in recorder.stats()
            if (s.stage, s.phase) == ("mdac", "amplify")
        )
        assert amplify.total_s > amplify.self_s > 0.0

    def test_add_and_merge_fold_entries(self):
        recorder = ProfileRecorder()
        recorder.add("dispatch", "fn", 0.5, count=2)
        other = ProfileRecorder()
        other.add("dispatch", "fn", 0.25)
        recorder.merge(other)
        (stat,) = recorder.stats()
        assert stat.count == 3
        assert stat.total_s == pytest.approx(0.75)
        assert stat.self_s == pytest.approx(0.75)
        recorder.clear()
        assert recorder.stats() == []

    def test_recorder_document_schema(self):
        recorder = ProfileRecorder()
        with profiled(recorder):
            with record("mdac", "settle"):
                pass
        document = recorder.to_dict()
        assert document["schema"] == PROFILE_SCHEMA
        assert document["entries"][0].keys() == {
            "stage",
            "phase",
            "count",
            "total_s",
            "self_s",
        }


class TestProfileWorkload:
    """The repro profile workloads and report document."""

    def test_dynamic_screen_report(self):
        report = profile_workload("dynamic-screen", dies=2, fft_points=256)
        assert report.workload == "dynamic-screen"
        assert report.n_items == 2
        assert tuple(p.engine for p in report.engines) == ENGINES
        for profile in report.engines:
            assert profile.wall_s > 0
            # The engine stages show up under both engines, and the
            # partition never exceeds the run it partitions.
            assert profile.stat("mdac", "settle") is not None
            assert 0 < profile.attributed_fraction() <= 1.0 + 1e-9
        rendered = report.render()
        assert "mdac" in rendered and "noise-draw" in rendered
        assert "attributed to named stages" in rendered

    def test_report_json_document_stable(self):
        report = profile_workload(
            "dynamic-screen", dies=1, fft_points=256, engines=("serial",)
        )
        document = json.loads(report.to_json())
        assert document["schema"] == PROFILE_REPORT_SCHEMA
        assert document["workload"] in WORKLOADS
        assert document["n_items"] == 1
        assert document["fft_points"] == 256
        (engine,) = document["engines"]
        assert engine.keys() == {
            "engine",
            "wall_s",
            "n_items",
            "item_wall_s",
            "attributed_fraction",
            "stage_shares",
            "entries",
        }
        assert "run" not in engine["stage_shares"]
        assert not OVERLAY_STAGES & engine["stage_shares"].keys()

    def test_unknown_inputs_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            profile_workload("nope")
        with pytest.raises(ConfigurationError):
            profile_workload("dynamic-screen", engines=("gpu",))
        with pytest.raises(ConfigurationError):
            profile_workload("dynamic-screen", dies=0)


class TestProfileCli:
    """repro profile through the real CLI entry point."""

    def test_profile_smoke(self, capsys, tmp_path):
        out = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "dynamic-screen",
                "--dies",
                "1",
                "--fft-points",
                "256",
                "--engine",
                "serial",
                "--json",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "repro profile: dynamic-screen" in captured.out
        document = json.loads(out.read_text())
        assert document["schema"] == PROFILE_REPORT_SCHEMA

    def test_profile_rejects_bad_workload(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "nope"])
        assert "invalid choice" in capsys.readouterr().err

    def test_profile_unwritable_json_exits_2(self, capsys, tmp_path):
        code = main(
            [
                "profile",
                "dynamic-screen",
                "--dies",
                "1",
                "--fft-points",
                "256",
                "--engine",
                "serial",
                "--json",
                str(tmp_path / "missing-dir" / "p.json"),
            ]
        )
        assert code == 2
