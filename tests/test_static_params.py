"""Tests for repro.signal.static_params."""

import numpy as np
import pytest

from repro.core.behavioral import ideal_transfer_codes
from repro.errors import AnalysisError
from repro.signal.static_params import extract_static_parameters


def capture(transfer=lambda v: v, n=40000, overdrive=1.05):
    v = np.linspace(-overdrive, overdrive, n)
    codes = ideal_transfer_codes(transfer(v), 1.0, 12)
    return v, codes


class TestExtraction:
    def test_ideal_transfer_is_clean(self):
        v, codes = capture()
        params = extract_static_parameters(v, codes, 1.0, 12)
        assert abs(params.offset_lsb) < 0.1
        assert abs(params.gain_error_fraction) < 1e-3
        assert params.fit_rms_lsb < 0.5  # quantization only

    def test_detects_offset(self):
        v, codes = capture(lambda v: v + 0.01)  # +20.5 LSB of offset
        params = extract_static_parameters(v, codes, 1.0, 12)
        assert params.offset_lsb == pytest.approx(20.5, abs=1.0)

    def test_detects_gain_error(self):
        v, codes = capture(lambda v: 0.99 * v)
        params = extract_static_parameters(v, codes, 1.0, 12)
        assert params.gain_error_fraction == pytest.approx(-0.01, abs=1e-3)

    def test_offset_sign_convention(self):
        v, codes = capture(lambda v: v - 0.005)
        params = extract_static_parameters(v, codes, 1.0, 12)
        assert params.offset_lsb < -5

    def test_clipping_excluded(self):
        """Heavy overdrive must not corrupt the fit."""
        v, codes = capture(overdrive=1.4)
        params = extract_static_parameters(v, codes, 1.0, 12)
        assert abs(params.gain_error_fraction) < 2e-3

    def test_summary(self):
        v, codes = capture()
        text = extract_static_parameters(v, codes, 1.0, 12).summary()
        assert "offset" in text and "gain error" in text

    def test_rejects_bad_shapes(self):
        with pytest.raises(AnalysisError):
            extract_static_parameters(
                np.zeros(100), np.zeros(99), 1.0, 12
            )

    def test_rejects_fully_clipped(self):
        v = np.linspace(2.0, 3.0, 1000)
        codes = ideal_transfer_codes(v, 1.0, 12)
        with pytest.raises(AnalysisError):
            extract_static_parameters(v, codes, 1.0, 12)


class TestOnTheConverter:
    def test_paper_die_static_parameters(self, paper_adc, paper_config):
        """The model die: sub-LSB-scale offset, sub-percent gain error
        (reference sag + droop + finite gain)."""
        v = np.linspace(-1.02, 1.02, 4096 * 10)
        result = paper_adc.convert_samples(v)
        params = extract_static_parameters(
            v, result.codes, paper_config.vref, paper_config.resolution
        )
        assert abs(params.offset_lsb) < 8.0
        assert abs(params.gain_error_fraction) < 0.01
        assert params.fit_rms_lsb < 2.0
