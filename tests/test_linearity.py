"""Tests for repro.signal.linearity."""

import numpy as np
import pytest

from repro.core.behavioral import ideal_transfer_codes
from repro.errors import AnalysisError
from repro.signal.linearity import (
    histogram_linearity,
    ramp_linearity,
    sine_linearity,
)

N_CODES = 256  # 8-bit keeps histogram tests fast


def ramp_codes(transfer=lambda v: v, n_per_code=64, overdrive=1.02):
    v = np.linspace(-overdrive, overdrive, N_CODES * n_per_code)
    return ideal_transfer_codes(transfer(v), 1.0, 8)


class TestRampLinearity:
    def test_ideal_is_zero(self):
        result = ramp_linearity(ramp_codes(), N_CODES)
        assert abs(result.dnl_min) < 0.05
        assert abs(result.dnl_max) < 0.05
        assert abs(result.inl_min) < 0.05
        assert abs(result.inl_max) < 0.05
        assert result.monotonic
        assert not result.missing_codes

    def test_gain_error_invisible_after_normalization(self):
        """A pure gain error is not nonlinearity."""
        result = ramp_linearity(
            ramp_codes(lambda v: 0.98 * v, overdrive=1.06), N_CODES
        )
        assert abs(result.inl_max) < 0.08
        assert abs(result.inl_min) < 0.08

    def test_cubic_bow_shows_in_inl(self):
        result = ramp_linearity(
            ramp_codes(lambda v: v + 0.003 * v**3), N_CODES
        )
        # 0.003 V of cubic at 8 bits: ~0.15 LSB of S-shaped INL.
        assert result.inl_max > 0.12
        assert result.inl_min < -0.12

    def test_missing_code_detected(self):
        codes = ramp_codes()
        codes[codes == 77] = 78  # destroy code 77
        result = ramp_linearity(codes, N_CODES)
        assert 77 in result.missing_codes
        assert not result.monotonic
        assert result.dnl_min == pytest.approx(-1.0, abs=1e-9)

    def test_wide_code_shows_positive_dnl(self):
        def transfer(v):
            # Stretch the middle code by pushing its upper edge up.
            out = v.copy()
            mask = (v > 0) & (v < 4.0 / N_CODES)
            out[mask] = 0.0
            return out

        result = ramp_linearity(ramp_codes(transfer), N_CODES)
        assert result.dnl_max > 0.5

    def test_rejects_thin_histograms(self):
        with pytest.raises(AnalysisError):
            ramp_linearity(np.zeros(100, dtype=int), N_CODES)


class TestSineLinearity:
    def test_ideal_sine_near_zero(self):
        n = N_CODES * 220
        t = np.arange(n)
        # Irrational-ish frequency avoids code locking.
        v = 1.02 * np.sin(2 * np.pi * t * 0.137841)
        codes = ideal_transfer_codes(v, 1.0, 8)
        result = sine_linearity(codes, N_CODES, amplitude_codes=1.02 * 128)
        assert abs(result.dnl_min) < 0.15
        assert abs(result.dnl_max) < 0.15
        assert abs(result.inl_max) < 0.2

    def test_detects_cubic_distortion(self):
        n = N_CODES * 220
        t = np.arange(n)
        v = 1.02 * np.sin(2 * np.pi * t * 0.137841)
        codes = ideal_transfer_codes(v + 0.004 * v**3, 1.0, 8)
        result = sine_linearity(codes, N_CODES, amplitude_codes=1.025 * 128)
        assert max(abs(result.inl_min), abs(result.inl_max)) > 0.2


class TestHistogramLinearity:
    def test_expected_density_shape_enforced(self):
        with pytest.raises(AnalysisError):
            histogram_linearity(
                ramp_codes(), N_CODES, np.ones(N_CODES - 1)
            )

    def test_rejects_zero_density(self):
        density = np.ones(N_CODES)
        density[5] = 0.0
        with pytest.raises(AnalysisError):
            histogram_linearity(ramp_codes(), N_CODES, density)

    def test_summary_renders(self):
        result = ramp_linearity(ramp_codes(), N_CODES)
        text = result.summary()
        assert "DNL" in text and "INL" in text and "monotonic" in text

    def test_inl_endpoint_fit(self):
        """Endpoint fit zeroes the INL at both range ends."""
        result = ramp_linearity(ramp_codes(), N_CODES)
        assert result.inl[0] == pytest.approx(0.0, abs=0.1)
        assert result.inl[-1] == pytest.approx(0.0, abs=1e-9)
