"""Tests for repro.technology.capacitor."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.technology.capacitor import CapacitorMismatchModel, MetalCapacitor
from repro.technology.corners import OperatingPoint
from repro.technology.process import Technology


class TestMetalCapacitor:
    def test_area_from_density(self, technology):
        cap = MetalCapacitor(nominal=0.225e-12, technology=technology)
        assert cap.area == pytest.approx(0.225e-12 / technology.metal_cap_density)

    def test_rejects_nonpositive(self, technology):
        with pytest.raises(ConfigurationError):
            MetalCapacitor(nominal=0.0, technology=technology)

    def test_bigger_caps_match_better(self, technology):
        small = MetalCapacitor(nominal=0.1e-12, technology=technology)
        big = MetalCapacitor(nominal=0.4e-12, technology=technology)
        assert big.matching_sigma() == pytest.approx(
            small.matching_sigma() / 2, rel=1e-9
        )

    def test_value_tracks_cap_scale(self, technology):
        cap = MetalCapacitor(nominal=1e-12, technology=technology)
        fast = OperatingPoint(technology=technology, cap_scale=1.2)
        assert cap.value_at(fast) == pytest.approx(1.2e-12, rel=1e-3)

    def test_ktc_noise_value(self, technology, operating_point):
        """kT/C of 1 pF at room temperature is ~64 uV."""
        cap = MetalCapacitor(nominal=1e-12, technology=technology)
        assert cap.thermal_noise_voltage(operating_point) == pytest.approx(
            64e-6, rel=0.03
        )

    def test_ktc_noise_grows_when_cap_shrinks(self, technology, operating_point):
        small = MetalCapacitor(nominal=0.25e-12, technology=technology)
        big = MetalCapacitor(nominal=1e-12, technology=technology)
        assert small.thermal_noise_voltage(operating_point) == pytest.approx(
            2 * big.thermal_noise_voltage(operating_point), rel=1e-6
        )

    @given(st.floats(min_value=1e-14, max_value=1e-10))
    def test_matching_sigma_positive(self, nominal):
        cap = MetalCapacitor(nominal=nominal, technology=Technology())
        assert cap.matching_sigma() > 0


class TestMismatchModel:
    def test_ratio_sigma_scale(self, technology):
        model = CapacitorMismatchModel(technology=technology)
        single = MetalCapacitor(
            nominal=0.225e-12, technology=technology
        ).matching_sigma()
        assert model.ratio_sigma(0.225e-12) == pytest.approx(
            np.sqrt(2) * single
        )

    def test_sample_statistics(self, technology, rng):
        model = CapacitorMismatchModel(technology=technology)
        caps = np.full(4000, 0.225e-12)
        draws = model.sample_ratio_errors(caps, rng)
        assert abs(draws.mean()) < 1e-4
        assert draws.std() == pytest.approx(
            model.ratio_sigma(0.225e-12), rel=0.1
        )

    def test_sample_rejects_bad_caps(self, technology, rng):
        model = CapacitorMismatchModel(technology=technology)
        with pytest.raises(ConfigurationError):
            model.sample_ratio_errors(np.array([0.0]), rng)

    def test_absolute_scale_truncated(self, technology, rng):
        model = CapacitorMismatchModel(technology=technology)
        draws = [model.sample_absolute_scale(rng) for _ in range(2000)]
        spread = technology.metal_cap_spread
        assert all(1 - 3.01 * spread <= d <= 1 + 3.01 * spread for d in draws)
        assert np.std(draws) == pytest.approx(spread, rel=0.15)

    def test_absolute_scale_positive(self, technology, rng):
        model = CapacitorMismatchModel(technology=technology)
        assert all(
            model.sample_absolute_scale(rng) > 0 for _ in range(100)
        )
