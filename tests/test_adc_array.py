"""Tests for the die-batched engine stack.

The load-bearing contract: die *d* of any batch is bit-exact with the
same die simulated alone, regardless of die chunking, worker count or
execution engine.  Everything else (stacked draws, batched evaluation,
input validation) hangs off that.
"""

import numpy as np
import pytest

from repro.core.adc import PipelineAdc
from repro.core.adc_array import AdcArray
from repro.core.correction import DigitalCorrection
from repro.errors import ConfigurationError
from repro.runtime.montecarlo import default_sampler, run_yield_analysis
from repro.signal.generators import SineGenerator
from repro.signal.linearity import ramp_linearity
from repro.signal.spectrum import SpectrumAnalyzer
from repro.streams import (
    CONVERT_NOISE_STREAM,
    SAMPLES_NOISE_STREAM,
    DieStreams,
    noise_generator,
    normal_pair,
)
from repro.technology.corners import OperatingPointArray
from repro.technology.montecarlo import MonteCarloSampler, ProcessSampleArray


@pytest.fixture(scope="module")
def die_population(paper_config):
    return default_sampler(paper_config).sample(3, np.random.default_rng(11))


@pytest.fixture(scope="module")
def adc_array(paper_config, die_population):
    return AdcArray(paper_config, 110e6, die_population)


@pytest.fixture(scope="module")
def solo_adcs(paper_config, die_population):
    return [
        PipelineAdc(
            paper_config,
            110e6,
            operating_point=die.operating_point,
            seed=die.seed,
        )
        for die in die_population
    ]


class TestStreams:
    def test_noise_generator_replays(self):
        a = noise_generator(42, CONVERT_NOISE_STREAM).normal(size=8)
        b = noise_generator(42, CONVERT_NOISE_STREAM).normal(size=8)
        assert np.array_equal(a, b)

    def test_streams_are_separated(self):
        convert = noise_generator(42, CONVERT_NOISE_STREAM).normal(size=8)
        samples = noise_generator(42, SAMPLES_NOISE_STREAM).normal(size=8)
        assert not np.array_equal(convert, samples)

    def test_die_streams_match_per_die_generators(self):
        seeds = [3, 5, 9]
        streams = DieStreams.for_noise(seeds, CONVERT_NOISE_STREAM)
        block = streams.normal(0.0, 2.0, size=16)
        for die, seed in enumerate(seeds):
            solo = noise_generator(seed, CONVERT_NOISE_STREAM)
            assert np.array_equal(block[die], solo.normal(0.0, 2.0, size=16))

    def test_normal_where_draws_only_masked_positions(self):
        streams = DieStreams.for_noise([1, 2], CONVERT_NOISE_STREAM)
        mask = np.array([[True, False, True], [False, False, False]])
        block = streams.normal_where(mask, 1.0)
        assert block[1].tolist() == [0.0, 0.0, 0.0]
        assert block[0][1] == 0.0 and block[0][0] != 0.0

    def test_shape_validation(self):
        streams = DieStreams.for_noise([1, 2], CONVERT_NOISE_STREAM)
        with pytest.raises(ConfigurationError):
            streams.normal(size=(3, 4))
        with pytest.raises(ConfigurationError):
            streams.random_where(np.zeros((3, 4), dtype=bool))

    def test_normal_pair_matches_sequential_draws(self):
        """One fused 2n draw == two consecutive n draws, bit for bit."""
        seeds = [3, 5]
        fused = DieStreams.for_noise(seeds, CONVERT_NOISE_STREAM)
        sequential = DieStreams.for_noise(seeds, CONVERT_NOISE_STREAM)
        pair_a, pair_b = normal_pair(fused, 0.5, 2.0, (2, 16))
        assert np.array_equal(pair_a, sequential.normal(0.0, 0.5, (2, 16)))
        assert np.array_equal(pair_b, sequential.normal(0.0, 2.0, (2, 16)))

    def test_normal_pair_plain_generator_dispatch(self):
        one = np.random.default_rng(7)
        two = np.random.default_rng(7)
        pair_a, pair_b = normal_pair(one, 0.5, 2.0, (16,))
        assert np.array_equal(pair_a, two.normal(0.0, 0.5, 16))
        assert np.array_equal(pair_b, two.normal(0.0, 2.0, 16))


class TestStackedConstruction:
    def test_die_count_and_shapes(self, adc_array, paper_config):
        assert adc_array.n_dies == 3
        assert adc_array.ratio_errors.shape == (3, paper_config.n_stages)
        assert adc_array.comparator_offsets.shape == (
            3,
            paper_config.n_stages,
            2,
        )
        assert adc_array.stage_currents.shape == (3, paper_config.n_stages)

    def test_stacked_parameters_match_per_die(self, adc_array, solo_adcs):
        for die, solo in enumerate(solo_adcs):
            for i, stage in enumerate(solo.stages):
                assert (
                    adc_array.stages[i].mdac.ratio_error[die, 0]
                    == stage.mdac.ratio_error
                )
                assert (
                    adc_array.stages[i].subadc.offsets[0][die, 0]
                    == stage.subadc.offsets[0]
                )

    def test_accepts_stacked_samples(self, paper_config, die_population):
        stacked = ProcessSampleArray.from_samples(die_population)
        array = AdcArray(paper_config, 110e6, stacked)
        assert array.seeds == [die.seed for die in die_population]

    def test_rejects_empty_population(self, paper_config):
        with pytest.raises(ConfigurationError):
            AdcArray(paper_config, 110e6, [])

    def test_operating_point_array(self, die_population):
        points = OperatingPointArray(
            die.operating_point for die in die_population
        )
        assert len(points) == 3
        assert points.temperature_k.shape == (3, 1)
        assert points.capacitance_scale().shape == (3, 1)
        assert points[1] == die_population[1].operating_point


class TestBitExactness:
    """ISSUE acceptance: the batched engine reproduces the per-die path."""

    def test_convert_matches_per_die(self, adc_array, solo_adcs):
        tone = SineGenerator.coherent(10e6, 110e6, 256, amplitude=0.995)
        batch = adc_array.convert(tone, 256)
        assert batch.codes.shape == (3, 256)
        for die, solo in enumerate(solo_adcs):
            result = solo.convert(tone, 256)
            assert np.array_equal(batch.codes[die], result.codes)
            assert np.array_equal(batch.stage_codes[die], result.stage_codes)
            assert np.array_equal(
                batch.sample_times[die], result.sample_times
            )

    def test_convert_samples_matches_per_die(self, adc_array, solo_adcs):
        ramp = np.linspace(-1.02, 1.02, 4096)
        batch = adc_array.convert_samples(ramp)
        for die, solo in enumerate(solo_adcs):
            assert np.array_equal(
                batch.codes[die], solo.convert_samples(ramp).codes
            )

    def test_batch_size_invariance(self, paper_config, die_population):
        """A die's codes do not depend on which batch it sits in."""
        tone = SineGenerator.coherent(10e6, 110e6, 128, amplitude=0.9)
        full = AdcArray(paper_config, 110e6, die_population).convert(tone, 128)
        solo = AdcArray(paper_config, 110e6, die_population[1:2]).convert(
            tone, 128
        )
        assert np.array_equal(full.codes[1], solo.codes[0])

    def test_ideal_config_paths(self, ideal_config):
        """All impairment switches off exercise the no-noise branches."""
        from repro.technology.corners import OperatingPoint
        from repro.technology.montecarlo import ProcessSample

        samples = [
            ProcessSample(
                operating_point=OperatingPoint(
                    technology=ideal_config.technology
                ),
                seed=seed,
                index=index,
            )
            for index, seed in enumerate([0, 4])
        ]
        array = AdcArray(ideal_config, 110e6, samples)
        tone = SineGenerator.coherent(10e6, 110e6, 128, amplitude=0.9)
        batch = array.convert(tone, 128)
        for die, sample in enumerate(samples):
            solo = PipelineAdc(
                ideal_config,
                110e6,
                operating_point=sample.operating_point,
                seed=sample.seed,
            )
            assert np.array_equal(
                batch.codes[die], solo.convert(tone, 128).codes
            )

    def test_record_threshold_both_sides_bit_exact(
        self, paper_config, die_population
    ):
        """The per-die fallback and the blocked path agree bitwise.

        ``per_die_record_threshold`` only picks the execution strategy:
        a 512-sample record runs blocked under a high threshold and
        per-die under a low one, and the codes must not notice.
        """
        import dataclasses

        ramp = np.linspace(-1.02, 1.02, 512)
        blocked = AdcArray(
            dataclasses.replace(
                paper_config, per_die_record_threshold=100_000
            ),
            110e6,
            die_population,
        ).convert_samples(ramp)
        per_die = AdcArray(
            dataclasses.replace(paper_config, per_die_record_threshold=64),
            110e6,
            die_population,
        ).convert_samples(ramp)
        assert np.array_equal(blocked.codes, per_die.codes)
        assert np.array_equal(blocked.stage_codes, per_die.stage_codes)

    def test_die_view(self, adc_array):
        tone = SineGenerator.coherent(10e6, 110e6, 128, amplitude=0.9)
        batch = adc_array.convert(tone, 128)
        view = batch.die(1)
        assert np.array_equal(view.codes, batch.codes[1])
        assert view.resolution == batch.resolution


class TestConvertSamplesValidation:
    def test_rejects_empty(self, adc_array, paper_adc):
        with pytest.raises(ConfigurationError):
            adc_array.convert_samples(np.array([]))
        with pytest.raises(ConfigurationError):
            paper_adc.convert_samples(np.array([]))

    def test_rejects_bad_rank(self, adc_array):
        with pytest.raises(ConfigurationError):
            adc_array.convert_samples(np.zeros((2, 3, 4)))

    def test_rejects_wrong_die_count(self, adc_array):
        with pytest.raises(ConfigurationError):
            adc_array.convert_samples(np.zeros((5, 64)))

    def test_rejects_non_finite(self, adc_array, paper_adc):
        bad = np.array([0.0, np.nan, 0.5])
        with pytest.raises(ConfigurationError):
            adc_array.convert_samples(bad)
        with pytest.raises(ConfigurationError):
            paper_adc.convert_samples(bad)

    def test_rejects_nonpositive_count(self, adc_array):
        from repro.signal.generators import DcGenerator

        with pytest.raises(ConfigurationError):
            adc_array.convert(DcGenerator(0.0), 0)

    def test_per_die_records_accepted(self, adc_array, solo_adcs):
        block = np.vstack(
            [np.linspace(-0.5, 0.5, 64) + 0.01 * d for d in range(3)]
        )
        batch = adc_array.convert_samples(block)
        assert np.array_equal(
            batch.codes[2], solo_adcs[2].convert_samples(block[2]).codes
        )


class TestStackedSampler:
    def test_sample_stacked_matches_sample(self, technology):
        sampler = MonteCarloSampler(technology=technology)
        listed = sampler.sample(5, np.random.default_rng(3))
        stacked = sampler.sample_stacked(5, np.random.default_rng(3))
        assert len(stacked) == 5
        assert list(stacked) == listed

    def test_sample_spawned_stacked_partition_invariant(self, technology):
        sampler = MonteCarloSampler(technology=technology)
        assert (
            list(sampler.sample_spawned_stacked(6, 17))[:3]
            == sampler.sample_spawned(3, 17)
        )

    def test_round_trip(self, technology):
        sampler = MonteCarloSampler(technology=technology)
        listed = sampler.sample(4, np.random.default_rng(9))
        stacked = ProcessSampleArray.from_samples(listed)
        assert stacked[2] == listed[2]
        assert stacked.seeds.shape == (4,)


class TestBatchedEvaluation:
    def test_analyze_batch_matches_analyze(self, nominal_capture):
        codes = np.vstack([nominal_capture.codes, nominal_capture.codes[::-1]])
        analyzer = SpectrumAnalyzer()
        batched = analyzer.analyze_batch(codes, 110e6)
        for row, metrics in zip(codes, batched):
            solo = analyzer.analyze(row, 110e6)
            assert metrics.sndr_db == pytest.approx(solo.sndr_db, rel=1e-9)
            assert metrics.enob_bits == pytest.approx(
                solo.enob_bits, rel=1e-9
            )
            assert metrics.fundamental_bin == solo.fundamental_bin

    def test_analyze_batch_rejects_1d(self, nominal_capture):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            SpectrumAnalyzer().analyze_batch(nominal_capture.codes, 110e6)

    def test_ramp_linearity_die_axis(self, rng):
        n_codes = 16
        codes = rng.integers(0, n_codes, size=(3, 16 * n_codes + 40))
        batched = ramp_linearity(codes, n_codes)
        assert len(batched) == 3
        for row, result in zip(codes, batched):
            solo = ramp_linearity(row, n_codes)
            assert np.array_equal(result.dnl, solo.dnl)
            assert np.array_equal(result.inl, solo.inl)
            assert result.missing_codes == solo.missing_codes

    def test_ramp_linearity_rejects_out_of_range_codes(self, rng):
        from repro.errors import AnalysisError

        n_codes = 16
        codes = rng.integers(0, n_codes, size=(2, 16 * n_codes + 8))
        codes[0, 0] = n_codes  # would bleed into die 1's histogram
        with pytest.raises(AnalysisError):
            ramp_linearity(codes, n_codes)

    def test_correction_batch_axis(self):
        correction = DigitalCorrection(n_stages=4, flash_bits=2)
        rng = np.random.default_rng(0)
        stage_codes = rng.integers(-1, 2, size=(3, 20, 4))
        flash = rng.integers(0, 4, size=(3, 20))
        aligned_codes, aligned_flash = correction.align(stage_codes, flash)
        words = correction.combine(aligned_codes, aligned_flash)
        for die in range(3):
            solo_codes, solo_flash = correction.align(
                stage_codes[die], flash[die]
            )
            assert np.array_equal(
                words[die], correction.combine(solo_codes, solo_flash)
            )


class TestVectorizedEngine:
    """ISSUE acceptance: --engine vectorized == --engine pool."""

    KWARGS = dict(n_dies=3, seed=77, n_fft=1024)

    def test_matches_pool_engine(self, paper_config):
        pool = run_yield_analysis(config=paper_config, **self.KWARGS)
        vec = run_yield_analysis(
            config=paper_config, engine="vectorized", **self.KWARGS
        )
        assert vec.engine == "vectorized"
        assert pool.yield_fraction == vec.yield_fraction
        for a, b in zip(pool.dies, vec.dies):
            assert (a.index, a.seed, a.passed) == (b.index, b.seed, b.passed)
            # Codes are bit-exact; the spectral metrics pass through a
            # batched FFT, so association order may differ by ulps.
            assert b.sndr_db == pytest.approx(a.sndr_db, rel=1e-9)
            assert b.enob_bits == pytest.approx(a.enob_bits, rel=1e-9)
            assert b.dnl_peak_lsb == a.dnl_peak_lsb

    def test_die_chunk_invariance(self, paper_config):
        reports = [
            run_yield_analysis(
                config=paper_config,
                engine="vectorized",
                die_chunk=chunk,
                **self.KWARGS,
            )
            for chunk in (1, 2, None)
        ]
        first = reports[0]
        for report in reports[1:]:
            for a, b in zip(first.dies, report.dies):
                assert b.dnl_peak_lsb == a.dnl_peak_lsb
                assert b.sndr_db == pytest.approx(a.sndr_db, rel=1e-9)
                assert b.passed == a.passed

    def test_worker_invariance(self, paper_config):
        serial = run_yield_analysis(
            config=paper_config, engine="vectorized", die_chunk=1, **self.KWARGS
        )
        pooled = run_yield_analysis(
            config=paper_config,
            engine="vectorized",
            die_chunk=1,
            workers=2,
            **self.KWARGS,
        )
        assert [d.passed for d in serial.dies] == [
            d.passed for d in pooled.dies
        ]
        for a, b in zip(serial.dies, pooled.dies):
            assert b.sndr_db == pytest.approx(a.sndr_db, rel=1e-12)

    def test_unknown_engine_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            run_yield_analysis(
                config=paper_config, engine="turbo", **self.KWARGS
            )

    def test_bad_die_chunk_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            run_yield_analysis(
                config=paper_config,
                engine="vectorized",
                die_chunk=0,
                **self.KWARGS,
            )

    def test_die_chunk_with_pool_engine_rejected(self, paper_config):
        """The flag must not be silently ignored on the default engine."""
        with pytest.raises(ConfigurationError):
            run_yield_analysis(
                config=paper_config, die_chunk=4, **self.KWARGS
            )

    def test_report_document_carries_engine(self, paper_config):
        import json

        report = run_yield_analysis(
            config=paper_config, engine="vectorized", **self.KWARGS
        )
        document = json.loads(report.to_json())
        assert document["engine"] == "vectorized"
        assert document["yield"]["n_dies"] == 3
