"""Benchmark: regenerate paper Fig. 6 (SFDR/SNR/SNDR vs input frequency).

Prints the 2..150 MHz series at 110 MS/s (inputs beyond Nyquist are
genuine undersampling) and checks the SNR jitter wall above 100 MHz and
the input-switch SFDR roll-off."""

from benchmarks.conftest import run_and_report


def test_fig6_metrics_versus_input_frequency(benchmark):
    result = run_and_report(benchmark, "fig6")
    fins = [float(row[0]) for row in result.rows]
    assert min(fins) <= 2 and max(fins) >= 150
