"""Monte Carlo engine comparison: serial vs pool vs vectorized wall time.

Benchmarks two seeded die-population workloads through every
execution-engine configuration:

- ``dynamic-screen`` — the headline workload: 32 dies x 4096 samples,
  coherent tone capture + FFT metrics per die.  This is where
  die-batching bites: the per-die Python dispatch disappears and the
  FFTs run as one batched transform.
- ``yield-screen`` — the full ``repro mc`` workload (tone + 16
  samples/code linearity ramp).  The long ramp is per-sample bound, so
  engine differences are smaller; the pool supplies the parallel axis.
- ``calibrated-yield`` — the ``repro mc --calibrate`` workload: every
  die is foreground gain-calibrated before screening.  The vectorized
  engine captures each chunk's calibration ramp in one die-batched
  pass (``GainCalibrationArray``), so the per-die calibration Python
  dispatch disappears on top of the yield-screen batching.
- ``pvt-campaign`` — the ``repro campaign`` sign-off workload: a
  5-corner x 3-temperature x N-die grid, serial = the legacy
  ``ext-corners``-style per-cell ``DynamicTestbench`` loop, vectorized
  = corner-batched ``(cells, samples)`` AdcArray passes.
- ``sharded-campaign`` — the scale-out path: the grid splits into two
  shards (``CampaignSpec.shard``), each runs against its own ledger,
  and ``merge_campaign_ledgers`` reassembles the campaign-wide report.
  Measures the shard + merge overhead on top of the plain campaign and
  asserts the merged metrics stay consistent with serial.

Engine configurations per workload:

- ``serial``          — pool engine, 1 worker: the per-die loop.
- ``pool``            — pool engine, all CPUs: process parallelism.
- ``vectorized``      — vectorized engine, 1 worker: die-batched NumPy.
- ``vectorized+pool`` — vectorized engine, all CPUs: the composition
  (the pool fans out die-batched chunks).
- ``vectorized-fast`` — vectorized engine, 1 worker, the opt-in
  ``precision="fast"`` tier (float32 + fused noise draws).

Per-die metrics are asserted identical across the default-precision
configurations (the engines are bit-exact per die); the fast tier is
instead gated by statistical equivalence — every metric must agree
with serial within a documented tolerance, never bitwise.  The wall
times plus speedups are emitted as a ``BENCH_engines.json`` artifact
for the perf trajectory.  The artifact records environment metadata
(numpy version, CPU count, platform) so baseline comparisons across
machines are interpretable.

``--compare-baseline PATH`` additionally compares the fresh run against
a committed baseline artifact (``benchmarks/BENCH_baseline.json``): the
run fails when any shared workload's wall time regresses beyond the
tolerance (default 1.5x) or when the engines' metrics diverge — the CI
benchmark-regression gate.

``--history-dir DIR`` appends the run to a perf-trajectory history:
one schema-versioned JSON per run (``repro.bench-history/v1``) stamped
with a UTC timestamp and best-effort git identity, wrapping the full
v4 bench document.  ``--history-report`` renders the accumulated
per-workload wall-time trend from such a directory without rerunning
anything; ``--history-plot PNG`` renders the same trajectory as a
matplotlib figure (one panel per workload, one line per engine).  The
committed trajectory lives in ``benchmarks/BENCH_history/``; CI
appends its own run as an artifact and uploads the rendered PNG.

Run as a script::

    python benchmarks/bench_engines.py --dies 32 --fft-points 4096 \
        --out BENCH_engines.json
    python benchmarks/bench_engines.py --dies 16 --fft-points 2048 \
        --compare-baseline benchmarks/BENCH_baseline.json
    python benchmarks/bench_engines.py --history-report

or through pytest (small smoke workload)::

    pytest benchmarks/bench_engines.py -q --benchmark-disable
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.schemas import BENCH_ENGINES_SCHEMA, BENCH_HISTORY_SCHEMA

#: The committed perf-trajectory directory.
HISTORY_DIR = Path(__file__).resolve().parent / "BENCH_history"

#: Wall-time regression tolerance of the --compare-baseline gate.
BASELINE_TOLERANCE = 1.5

#: Additive slack [s] on top of the tolerance: sub-100ms workloads
#: cannot trip the gate on scheduler noise alone.
BASELINE_SLACK_S = 0.1

#: Dies per vectorized chunk for the dynamic screen (cache-sized).
_DYNAMIC_DIE_CHUNK = 8

#: Statistical-equivalence tolerances for the fast tier.  The fast
#: tier draws a different (fused) noise sequence, so its metrics are a
#: different statistical realization of the same die — the gate bounds
#: the realization spread, it does not claim bitwise precision.
#: Relative covers the large dB-scale metrics (SNDR/SFDR/ENOB: ~2% is
#: ~1.3 dB / ~0.2 bit headroom over the ~0.1 dB observed); absolute
#: covers the small LSB-scale linearity metrics, whose code-density
#: estimates carry ~0.1-0.2 LSB of realization noise of their own.
FAST_REL_TOL = 0.02
FAST_ABS_TOL = 0.35


def _engine_configs(workers: int) -> dict[str, dict]:
    return {
        "serial": {"engine": "pool", "workers": 1},
        "pool": {"engine": "pool", "workers": workers},
        "vectorized": {"engine": "vectorized", "workers": 1},
        "vectorized+pool": {"engine": "vectorized", "workers": workers},
        "vectorized-fast": {
            "engine": "vectorized",
            "workers": 1,
            "precision": "fast",
        },
    }


# --- dynamic screen (tone + FFT only) ----------------------------------


@dataclass(frozen=True)
class _DynamicTask:
    """One die (or die chunk) of the dynamic screen."""

    samples: tuple
    n_fft: int
    conversion_rate: float = 110e6
    input_frequency: float = 10e6
    precision: str = "exact"


def _measure_dynamic_die(task: _DynamicTask):
    from repro.core.adc import PipelineAdc
    from repro.core.config import AdcConfig
    from repro.signal.generators import SineGenerator
    from repro.signal.spectrum import SpectrumAnalyzer

    (die,) = task.samples
    adc = PipelineAdc(
        AdcConfig.paper_default(),
        conversion_rate=task.conversion_rate,
        operating_point=die.operating_point,
        seed=die.seed,
    )
    tone = SineGenerator.coherent(
        task.input_frequency, task.conversion_rate, task.n_fft, amplitude=0.995
    )
    metrics = SpectrumAnalyzer().analyze(
        adc.convert(tone, task.n_fft).codes, task.conversion_rate
    )
    return [(die.index, metrics.sndr_db, metrics.enob_bits)]


def _measure_dynamic_chunk(task: _DynamicTask):
    from repro.core.adc_array import AdcArray
    from repro.core.config import AdcConfig
    from repro.signal.generators import SineGenerator
    from repro.signal.spectrum import SpectrumAnalyzer

    adc = AdcArray(
        AdcConfig.paper_default(),
        task.conversion_rate,
        task.samples,
        precision=task.precision,
    )
    tone = SineGenerator.coherent(
        task.input_frequency, task.conversion_rate, task.n_fft, amplitude=0.995
    )
    spectra = SpectrumAnalyzer().analyze_batch(
        adc.convert(tone, task.n_fft).codes, task.conversion_rate
    )
    return [
        (die.index, m.sndr_db, m.enob_bits)
        for die, m in zip(task.samples, spectra)
    ]


def _run_dynamic_config(dies, n_fft, engine, workers, precision="exact"):
    from repro.runtime.batch import BatchRunner

    if engine == "pool":
        tasks = [_DynamicTask(samples=(die,), n_fft=n_fft) for die in dies]
        fn = _measure_dynamic_die
    else:
        chunk = _DYNAMIC_DIE_CHUNK
        tasks = [
            _DynamicTask(
                samples=tuple(dies[low : low + chunk]),
                n_fft=n_fft,
                precision=precision,
            )
            for low in range(0, len(dies), chunk)
        ]
        fn = _measure_dynamic_chunk
    batch = BatchRunner(workers=workers).run(fn, tasks)
    batch.raise_first_failure()
    rows = [row for value in batch.values for row in value]
    return sorted(rows)


# --- the comparison harness --------------------------------------------


def _rows_close(a, b) -> bool:
    return len(a) == len(b) and all(
        x[0] == y[0]
        and all(
            math.isclose(p, q, rel_tol=1e-9, abs_tol=1e-12)
            for p, q in zip(x[1:], y[1:])
        )
        for x, y in zip(a, b)
    )


def _rows_statistically_close(a, b) -> bool:
    """Loose agreement gate for the fast precision tier.

    Fast-tier codes differ sample-by-sample from the exact engine (the
    fused output-referred noise draw consumes different stream values),
    so per-die metrics are compared with tolerances sized to realization
    noise rather than floating-point error.
    """
    return len(a) == len(b) and all(
        x[0] == y[0]
        and all(
            math.isclose(p, q, rel_tol=FAST_REL_TOL, abs_tol=FAST_ABS_TOL)
            for p, q in zip(x[1:], y[1:])
        )
        for x, y in zip(a, b)
    )


def _compare_configs(run_one, workers: int) -> dict:
    """Time every engine configuration through ``run_one(config)``."""
    from repro.core import die_cache

    results: dict[str, dict] = {}
    reference = None
    for name, config in _engine_configs(workers).items():
        # Every configuration is timed cold: a die cache warmed by the
        # previous engine would hand its successor a free build column.
        die_cache.clear()
        start = time.perf_counter()
        rows = run_one(config)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = rows
        close = (
            _rows_statistically_close
            if config.get("precision", "exact") == "fast"
            else _rows_close
        )
        results[name] = {
            **config,
            "elapsed_s": elapsed,
            "consistent_with_serial": close(reference, rows),
        }
    serial_time = results["serial"]["elapsed_s"]
    for entry in results.values():
        entry["speedup_vs_serial"] = serial_time / entry["elapsed_s"]
    best = max(results, key=lambda name: results[name]["speedup_vs_serial"])
    return {
        "engines": results,
        "best_engine": best,
        "best_speedup_vs_serial": results[best]["speedup_vs_serial"],
        "all_consistent": all(
            entry["consistent_with_serial"] for entry in results.values()
        ),
    }


def _run_campaign_config(
    campaign_dies, n_fft, seed, engine, workers, precision="exact"
):
    from repro.runtime.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        n_dies=campaign_dies,
        seed=seed,
        n_samples=n_fft,
        precision=precision,
    )
    report = run_campaign(spec, engine=engine, workers=workers)
    report.batch.raise_first_failure()
    return sorted(
        (c.index, c.snr_db, c.sndr_db, c.sfdr_db, c.enob_bits)
        for c in report.cells
    )


def _run_sharded_campaign_config(
    campaign_dies, n_fft, seed, engine, workers, precision="exact"
):
    """Two shards to their own ledgers, then the ledger merge."""
    import tempfile

    from repro.runtime.campaign import CampaignSpec
    from repro.runtime.shards import (
        merge_campaign_ledgers,
        run_campaign_shard,
    )
    from repro.technology.corners import Corner

    # A trimmed grid (3 corners, half the dies) bounds the cost: the
    # workload measures shard + merge overhead, not raw conversion.
    spec = CampaignSpec(
        corners=(Corner.TT, Corner.FF, Corner.SS),
        n_dies=max(1, campaign_dies // 2),
        seed=seed,
        n_samples=n_fft,
        precision=precision,
    )
    with tempfile.TemporaryDirectory() as tmpdir:
        ledgers = []
        for shard in spec.shards(2):
            ledger = Path(tmpdir) / f"shard-{shard.index}.jsonl"
            report = run_campaign_shard(
                shard,
                engine=engine,
                workers=workers,
                ledger_path=ledger,
            )
            report.batch.raise_first_failure()
            ledgers.append(ledger)
        merged = merge_campaign_ledgers(ledgers)
    if not merged.complete:
        raise RuntimeError(
            f"merged report incomplete: {merged.missing_cell_indices()}"
        )
    return sorted(
        (c.index, c.snr_db, c.sndr_db, c.sfdr_db, c.enob_bits)
        for c in merged.cells
    )


def run_engine_comparison(
    dies: int = 32,
    n_fft: int = 4096,
    ramp_points_per_code: int = 16,
    calibration_samples_per_code: int = 8,
    campaign_dies: int = 16,
    seed: int = 2026,
    workers: int | None = None,
    include_yield_screen: bool = True,
    include_calibrated_yield: bool = True,
    include_campaign: bool = True,
    include_sharded_campaign: bool = True,
) -> dict:
    """Time every engine configuration on the seeded workloads."""
    import numpy as np

    from repro.core.config import AdcConfig
    from repro.runtime.montecarlo import default_sampler, run_yield_analysis
    from repro.runtime.seeding import population_generator

    workers = workers or os.cpu_count() or 1
    population = default_sampler(AdcConfig.paper_default()).sample(
        dies, population_generator(seed)
    )
    # Warm NumPy/FFT caches and the import graph so the first timed
    # configuration is not charged for one-time setup.
    run_yield_analysis(n_dies=2, seed=seed, n_fft=512)

    workloads = {}
    workloads["dynamic-screen"] = {
        "params": {"dies": dies, "n_fft": n_fft, "seed": seed},
        **_compare_configs(
            lambda config: _run_dynamic_config(
                population,
                n_fft,
                config["engine"],
                config["workers"],
                config.get("precision", "exact"),
            ),
            workers,
        ),
    }
    def run_yield(config, calibrate=False):
        report = run_yield_analysis(
            n_dies=dies,
            seed=seed,
            n_fft=n_fft,
            ramp_points_per_code=ramp_points_per_code,
            calibrate=calibrate,
            calibration_samples_per_code=calibration_samples_per_code,
            **config,
        )
        if report.batch.failures:
            raise RuntimeError(
                f"die failures: {report.batch.failures[0].error}"
            )
        return sorted(
            (d.index, d.sndr_db, d.enob_bits, d.dnl_peak_lsb, d.inl_peak_lsb)
            for d in report.dies
        )

    if include_yield_screen:
        workloads["yield-screen"] = {
            "params": {
                "dies": dies,
                "n_fft": n_fft,
                "ramp_points_per_code": ramp_points_per_code,
                "seed": seed,
            },
            **_compare_configs(run_yield, workers),
        }
    if include_calibrated_yield:
        workloads["calibrated-yield"] = {
            "params": {
                "dies": dies,
                "n_fft": n_fft,
                "ramp_points_per_code": ramp_points_per_code,
                "calibration_samples_per_code": calibration_samples_per_code,
                "seed": seed,
            },
            **_compare_configs(
                lambda config: run_yield(config, calibrate=True), workers
            ),
        }
    if include_campaign:
        workloads["pvt-campaign"] = {
            "params": {
                "corners": 5,
                "temperatures": 3,
                "dies": campaign_dies,
                "n_fft": n_fft,
                "seed": seed,
            },
            **_compare_configs(
                lambda config: _run_campaign_config(
                    campaign_dies,
                    n_fft,
                    seed,
                    config["engine"],
                    config["workers"],
                    config.get("precision", "exact"),
                ),
                workers,
            ),
        }
    if include_sharded_campaign:
        workloads["sharded-campaign"] = {
            "params": {
                "corners": 3,
                "temperatures": 3,
                "dies": max(1, campaign_dies // 2),
                "shards": 2,
                "n_fft": n_fft,
                "seed": seed,
            },
            **_compare_configs(
                lambda config: _run_sharded_campaign_config(
                    campaign_dies,
                    n_fft,
                    seed,
                    config["engine"],
                    config["workers"],
                    config.get("precision", "exact"),
                ),
                workers,
            ),
        }
    return {
        "schema": BENCH_ENGINES_SCHEMA,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workloads": workloads,
        "all_consistent": all(
            w["all_consistent"] for w in workloads.values()
        ),
    }


def environments_match(current: dict, baseline: dict) -> bool:
    """Whether two artifacts came from comparable environments.

    Wall times are only enforceable when the machine shape matches;
    metric consistency and workload coverage are enforced regardless.
    """
    return all(
        current.get(key) == baseline.get(key)
        for key in ("cpu_count", "numpy", "machine", "python")
    )


def compare_with_baseline(
    current: dict,
    baseline: dict,
    tolerance: float = BASELINE_TOLERANCE,
    enforce_walltime: bool = True,
) -> list[str]:
    """Regression messages from comparing a fresh run to a baseline.

    A workload regresses when any engine configuration's wall time
    exceeds ``tolerance`` times the baseline's (plus a small additive
    slack, so millisecond workloads cannot trip on scheduler noise),
    when its engine metrics diverge from serial, or when a baseline
    workload is missing from the fresh run.  Workloads whose
    parameters differ are reported as incomparable (apples-to-oranges)
    rather than silently skipped.  With ``enforce_walltime`` False
    (mismatched environments — see :func:`environments_match`) the
    wall-time comparison is skipped; the structural checks remain.
    An empty list means the gate passes.
    """
    messages: list[str] = []
    for name, base_workload in baseline.get("workloads", {}).items():
        workload = current.get("workloads", {}).get(name)
        if workload is None:
            messages.append(f"{name}: workload missing from this run")
            continue
        if workload["params"] != base_workload["params"]:
            messages.append(
                f"{name}: params differ from baseline "
                f"({workload['params']} vs {base_workload['params']}); "
                "refresh the baseline"
            )
            continue
        if not workload["all_consistent"]:
            messages.append(f"{name}: engine metrics diverge from serial")
        for config, base_entry in base_workload["engines"].items():
            entry = workload["engines"].get(config)
            if entry is None:
                messages.append(f"{name}/{config}: configuration missing")
                continue
            limit = tolerance * base_entry["elapsed_s"] + BASELINE_SLACK_S
            if enforce_walltime and entry["elapsed_s"] > limit:
                messages.append(
                    f"{name}/{config}: {entry['elapsed_s']:.2f} s vs "
                    f"baseline {base_entry['elapsed_s']:.2f} s "
                    f"(> {tolerance:.2f}x + {BASELINE_SLACK_S:.1f} s)"
                )
    return messages


def _environment_summary(document: dict) -> str:
    return (
        f"python {document.get('python')}, numpy {document.get('numpy')}, "
        f"{document.get('cpu_count')} CPU(s), "
        f"{document.get('machine', '?')}, {document.get('platform')}"
    )


def run_baseline_gate(
    document: dict, baseline_path: Path, tolerance: float = BASELINE_TOLERANCE
) -> bool:
    """Apply the --compare-baseline gate; prints a verdict, True = pass."""
    baseline = json.loads(baseline_path.read_text())
    print(f"baseline:  {_environment_summary(baseline)}")
    print(f"this run:  {_environment_summary(document)}")
    comparable = environments_match(document, baseline)
    messages = compare_with_baseline(
        document, baseline, tolerance, enforce_walltime=comparable
    )
    if not comparable:
        print(
            "note: environment differs from the baseline's — wall times "
            "are reported but not enforced (structural checks still "
            "apply); refresh the baseline from this environment to arm "
            "the wall-time gate"
        )
        full = compare_with_baseline(
            document, baseline, tolerance, enforce_walltime=True
        )
        for message in full:
            if message not in messages:
                print(f"  (info) {message}")
    if messages:
        print(f"BASELINE REGRESSION ({baseline_path}):")
        for message in messages:
            print(f"  - {message}")
        return False
    print(
        f"baseline gate passed ({baseline_path}, tolerance {tolerance}x, "
        f"wall-time {'enforced' if comparable else 'informational'})"
    )
    return True


# --- perf-trajectory history -------------------------------------------


def _git_identity() -> dict | None:
    """Best-effort commit identity of the repo (None outside git)."""
    import subprocess

    repo = Path(__file__).resolve().parent
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=repo,
        )
        branch = subprocess.run(
            ["git", "rev-parse", "--abbrev-ref", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=repo,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if sha.returncode != 0:
        return None
    return {
        "sha": sha.stdout.strip(),
        "branch": branch.stdout.strip() if branch.returncode == 0 else None,
    }


def append_history(
    document: dict,
    history_dir: Path,
    recorded_at: str | None = None,
    label: str | None = None,
) -> Path:
    """Append one bench run to a history directory; returns the new file.

    Each entry is its own ``repro.bench-history/v1`` JSON (append =
    add a file, so concurrent CI runs and stacked PRs never rewrite
    each other's entries), wrapping the full v4 bench document plus a
    UTC timestamp and best-effort git identity.
    """
    from datetime import datetime, timezone

    recorded = recorded_at or datetime.now(timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )
    git = _git_identity()
    entry = {
        "schema": BENCH_HISTORY_SCHEMA,
        "recorded_at": recorded,
        "git": git,
        "label": label,
        "bench": document,
    }
    history_dir.mkdir(parents=True, exist_ok=True)
    stamp = recorded.replace("-", "").replace(":", "")
    sha = (git or {}).get("sha") or "nogit"
    path = history_dir / f"{stamp}_{sha[:10]}.json"
    suffix = 1
    while path.exists():
        path = history_dir / f"{stamp}_{sha[:10]}_{suffix}.json"
        suffix += 1
    path.write_text(json.dumps(entry, indent=2) + "\n")
    return path


def load_history(history_dir: Path) -> list[dict]:
    """History entries of a directory, oldest first (foreign JSON skipped)."""
    entries = []
    for path in sorted(history_dir.glob("*.json")):
        try:
            entry = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue
        if entry.get("schema") != BENCH_HISTORY_SCHEMA:
            continue
        entry["path"] = path.name
        entries.append(entry)
    entries.sort(key=lambda e: e.get("recorded_at", ""))
    return entries


def render_history(entries: list[dict]) -> str:
    """The per-workload wall-time trend across history entries.

    One block per workload, one line per run: serial wall time, the
    fastest configuration and its speedup.  Runs whose parameters
    differ from the newest entry's are marked so apparent jumps are
    not read as regressions.
    """
    if not entries:
        return "BENCH history: no entries"
    workloads: list[str] = []
    for entry in entries:
        for name in entry.get("bench", {}).get("workloads", {}):
            if name not in workloads:
                workloads.append(name)
    lines = [f"BENCH history ({len(entries)} run(s)):"]
    for name in workloads:
        lines.append(f"{name}:")
        newest_params = None
        for entry in reversed(entries):
            workload = entry.get("bench", {}).get("workloads", {}).get(name)
            if workload is not None:
                newest_params = workload["params"]
                break
        for entry in entries:
            workload = entry.get("bench", {}).get("workloads", {}).get(name)
            if workload is None:
                continue
            git = entry.get("git") or {}
            sha = (git.get("sha") or "nogit")[:10]
            serial_s = workload["engines"]["serial"]["elapsed_s"]
            best = workload["best_engine"]
            label = f"  [{entry['label']}]" if entry.get("label") else ""
            drift = (
                "  (params differ)"
                if workload["params"] != newest_params
                else ""
            )
            lines.append(
                f"  {entry.get('recorded_at', '?'):>20}  {sha:>10}  "
                f"serial {serial_s:6.2f} s  best {best} "
                f"{workload['best_speedup_vs_serial']:.2f}x"
                f"{label}{drift}"
            )
    return "\n".join(lines)


#: Fixed engine-config -> color assignment for the history plot.  The
#: mapping follows the entity, never the series count on screen: a
#: history where an engine is absent must not repaint the survivors.
#: Hues are a validated categorical order (adjacent-pair CVD dE >= 8).
_PLOT_SERIES_COLORS = {
    "serial": "#2a78d6",
    "thread": "#eb6834",
    "pool": "#1baf7a",
    "vectorized": "#eda100",
    "vectorized-fast": "#e87ba4",
}
_PLOT_FALLBACK_COLORS = ("#008300", "#4a3aa7", "#e34948")


def plot_history(entries: list[dict], out_path: Path) -> Path:
    """Render the per-workload wall-time trajectory as a PNG.

    Small multiples — one panel per workload, one line per engine
    configuration, wall time on a zero-based axis.  Runs whose
    parameters differ from the newest entry's are starred on the x
    axis (same drift rule as :func:`render_history`).  Requires
    matplotlib (a dev extra); raises ``RuntimeError`` with an install
    hint when it is missing so the text report stays usable without it.
    """
    try:
        import matplotlib
    except ImportError as error:  # pragma: no cover - env without extra
        raise RuntimeError(
            "matplotlib is required for --history-plot "
            "(pip install -e '.[dev]'); the text --history-report "
            "needs no extras"
        ) from error
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    if not entries:
        raise RuntimeError("BENCH history: no entries to plot")
    workloads: list[str] = []
    for entry in entries:
        for name in entry.get("bench", {}).get("workloads", {}):
            if name not in workloads:
                workloads.append(name)

    surface, grid, baseline = "#fcfcfb", "#e1e0d9", "#c3c2b7"
    ink, muted = "#0b0b0b", "#52514e"
    colors = dict(_PLOT_SERIES_COLORS)
    fallback = list(_PLOT_FALLBACK_COLORS)

    n = len(workloads)
    ncols = 2 if n > 1 else 1
    nrows = (n + ncols - 1) // ncols
    fig, axes = plt.subplots(
        nrows,
        ncols,
        figsize=(6.0 * ncols, 3.4 * nrows + 0.8),
        squeeze=False,
    )
    fig.patch.set_facecolor(surface)

    any_drift = False
    handles: dict[str, object] = {}
    for index, name in enumerate(workloads):
        ax = axes[index // ncols][index % ncols]
        ax.set_facecolor(surface)
        runs = [
            (position, entry, entry["bench"]["workloads"][name])
            for position, entry in enumerate(entries)
            if name in entry.get("bench", {}).get("workloads", {})
        ]
        newest_params = runs[-1][2]["params"]
        series: dict[str, tuple[list[int], list[float]]] = {}
        for position, _entry, workload in runs:
            for engine, result in workload["engines"].items():
                xs, ys = series.setdefault(engine, ([], []))
                xs.append(position)
                ys.append(result["elapsed_s"])
        for engine, (xs, ys) in series.items():
            if engine not in colors:
                colors[engine] = (
                    fallback.pop(0) if fallback else muted
                )
            (line,) = ax.plot(
                xs,
                ys,
                color=colors[engine],
                linewidth=2,
                marker="o",
                markersize=6,
                label=engine,
            )
            handles.setdefault(engine, line)
        ticks, labels = [], []
        for position, entry, workload in runs:
            drift = workload["params"] != newest_params
            any_drift = any_drift or drift
            stamp = entry.get("recorded_at", "?")[:10]
            ticks.append(position)
            labels.append(stamp + (" *" if drift else ""))
        ax.set_xticks(ticks)
        ax.set_xticklabels(labels, rotation=30, ha="right", fontsize=8)
        ax.set_ylim(bottom=0)
        ax.set_title(name, color=ink, fontsize=11)
        ax.set_ylabel("wall time (s)", color=muted, fontsize=9)
        ax.grid(axis="y", color=grid, linewidth=0.8)
        ax.set_axisbelow(True)
        for side in ("top", "right"):
            ax.spines[side].set_visible(False)
        for side in ("left", "bottom"):
            ax.spines[side].set_color(baseline)
        ax.tick_params(colors=muted, labelsize=8)
    for index in range(n, nrows * ncols):
        axes[index // ncols][index % ncols].set_visible(False)

    order = [e for e in colors if e in handles] + [
        e for e in handles if e not in colors
    ]
    fig.legend(
        [handles[e] for e in order],
        order,
        loc="lower center",
        ncol=min(len(order), 5),
        frameon=False,
        fontsize=9,
    )
    title = f"BENCH history — wall time per workload ({len(entries)} runs)"
    if any_drift:
        title += "   (* params differ from newest run)"
    fig.suptitle(title, color=ink, fontsize=12)
    fig.tight_layout(rect=(0, 0.07, 1, 0.95))
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fig.savefig(out_path, dpi=144, facecolor=surface)
    plt.close(fig)
    return out_path


def _print_document(document: dict) -> None:
    for name, workload in document["workloads"].items():
        print(f"{name} ({workload['params']}):")
        for config, entry in workload["engines"].items():
            marker = (
                "" if entry["consistent_with_serial"] else "  METRICS DIFFER!"
            )
            print(
                f"  {config:>15}: {entry['elapsed_s']:6.2f} s  "
                f"({entry['speedup_vs_serial']:.2f}x vs serial){marker}"
            )


def test_engine_comparison_smoke(tmp_path):
    """Small-workload engine comparison: consistency is the assertion."""
    document = run_engine_comparison(
        dies=4,
        n_fft=1024,
        ramp_points_per_code=16,
        calibration_samples_per_code=4,
        campaign_dies=1,
        workers=2,
    )
    assert document["all_consistent"], document
    assert document["schema"] == BENCH_ENGINES_SCHEMA
    assert document["numpy"]
    assert "calibrated-yield" in document["workloads"]
    assert document["workloads"]["calibrated-yield"]["all_consistent"]
    assert "pvt-campaign" in document["workloads"]
    assert document["workloads"]["pvt-campaign"]["all_consistent"]
    assert "sharded-campaign" in document["workloads"]
    assert document["workloads"]["sharded-campaign"]["all_consistent"]
    for workload in document["workloads"].values():
        fast = workload["engines"]["vectorized-fast"]
        assert fast["precision"] == "fast"
        assert fast["consistent_with_serial"]
    artifact = tmp_path / "BENCH_engines.json"
    artifact.write_text(json.dumps(document, indent=2))
    print()
    _print_document(document)
    # The gate passes against the run itself and flags a doctored copy.
    assert compare_with_baseline(document, document) == []
    slower = json.loads(artifact.read_text())
    entry = slower["workloads"]["pvt-campaign"]["engines"]["serial"]
    entry["elapsed_s"] += 10.0  # well past tolerance x baseline + slack
    assert any(
        "pvt-campaign/serial" in message
        for message in compare_with_baseline(slower, document)
    )
    # Mismatched environments demote wall-time to informational...
    other_machine = json.loads(json.dumps(slower))
    other_machine["cpu_count"] = 128
    assert not environments_match(other_machine, document)
    assert (
        compare_with_baseline(
            other_machine, document, enforce_walltime=False
        )
        == []
    )


def test_bench_history_roundtrip(tmp_path):
    """History append/load/render: ordering, schema, drift marking."""
    document = {
        "schema": BENCH_ENGINES_SCHEMA,
        "workloads": {
            "dynamic-screen": {
                "params": {"dies": 4},
                "all_consistent": True,
                "best_engine": "vectorized",
                "best_speedup_vs_serial": 2.0,
                "engines": {
                    "serial": {"elapsed_s": 1.0, "speedup_vs_serial": 1.0},
                    "vectorized": {
                        "elapsed_s": 0.5,
                        "speedup_vs_serial": 2.0,
                    },
                },
            }
        },
    }
    history = tmp_path / "BENCH_history"
    # Appended out of chronological order: load must sort by timestamp.
    newer = json.loads(json.dumps(document))
    newer["workloads"]["dynamic-screen"]["params"] = {"dies": 8}
    path_b = append_history(
        newer, history, recorded_at="2026-08-08T12:00:00Z"
    )
    path_a = append_history(
        document, history, recorded_at="2026-08-01T12:00:00Z", label="seed"
    )
    assert path_a != path_b
    (history / "foreign.json").write_text('{"schema": "other/v1"}')
    entries = load_history(history)
    assert [e["recorded_at"] for e in entries] == [
        "2026-08-01T12:00:00Z",
        "2026-08-08T12:00:00Z",
    ]
    assert all(e["schema"] == BENCH_HISTORY_SCHEMA for e in entries)
    assert entries[0]["bench"] == document
    report = render_history(entries)
    assert "dynamic-screen" in report
    assert "[seed]" in report
    # The older run's params differ from the newest entry's: marked.
    assert "(params differ)" in report
    assert render_history([]) == "BENCH history: no entries"


def test_plot_history_renders_png(tmp_path):
    """--history-plot writes a PNG; without matplotlib it hints."""
    import pytest

    try:
        import matplotlib  # noqa: F401
    except ImportError:
        with pytest.raises(RuntimeError, match="matplotlib is required"):
            plot_history([{"bench": {}}], tmp_path / "trend.png")
        pytest.skip("matplotlib not installed")
    document = {
        "schema": BENCH_ENGINES_SCHEMA,
        "workloads": {
            "dynamic-screen": {
                "params": {"dies": 4},
                "all_consistent": True,
                "best_engine": "vectorized",
                "best_speedup_vs_serial": 2.0,
                "engines": {
                    "serial": {"elapsed_s": 1.0, "speedup_vs_serial": 1.0},
                    "vectorized-fast": {
                        "elapsed_s": 0.4,
                        "speedup_vs_serial": 2.5,
                    },
                },
            }
        },
    }
    history = tmp_path / "BENCH_history"
    append_history(document, history, recorded_at="2026-08-01T12:00:00Z")
    drifted = json.loads(json.dumps(document))
    drifted["workloads"]["dynamic-screen"]["params"] = {"dies": 8}
    append_history(drifted, history, recorded_at="2026-08-08T12:00:00Z")
    out = plot_history(load_history(history), tmp_path / "trend.png")
    assert out.exists() and out.stat().st_size > 1000
    with pytest.raises(RuntimeError, match="no entries"):
        plot_history([], tmp_path / "empty.png")


def test_compare_with_baseline_param_and_consistency_guards():
    """Param drift and metric divergence are reported, not skipped."""
    baseline = {
        "workloads": {
            "w": {
                "params": {"dies": 4},
                "all_consistent": True,
                "engines": {"serial": {"elapsed_s": 1.0}},
            }
        }
    }
    drifted = json.loads(json.dumps(baseline))
    drifted["workloads"]["w"]["params"] = {"dies": 8}
    assert any(
        "params differ" in m for m in compare_with_baseline(drifted, baseline)
    )
    diverged = json.loads(json.dumps(baseline))
    diverged["workloads"]["w"]["all_consistent"] = False
    assert any(
        "diverge" in m for m in compare_with_baseline(diverged, baseline)
    )
    assert any(
        "missing" in m
        for m in compare_with_baseline({"workloads": {}}, baseline)
    )
    assert compare_with_baseline(baseline, baseline) == []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dies", type=int, default=32)
    parser.add_argument("--fft-points", type=int, default=4096)
    parser.add_argument("--ramp-points", type=int, default=16)
    parser.add_argument(
        "--cal-samples",
        type=int,
        default=8,
        help="calibration-ramp samples per code (calibrated-yield workload)",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool width for the parallel configs (default: all CPUs)",
    )
    parser.add_argument(
        "--campaign-dies",
        type=int,
        default=16,
        help="die axis of the 5x3 pvt-campaign grid (default 16)",
    )
    parser.add_argument(
        "--skip-yield-screen",
        action="store_true",
        help="skip the (uncalibrated) yield-screen workload",
    )
    parser.add_argument(
        "--skip-calibrated-yield",
        action="store_true",
        help="skip the calibrated-yield workload",
    )
    parser.add_argument(
        "--skip-campaign",
        action="store_true",
        help="skip the pvt-campaign workload",
    )
    parser.add_argument(
        "--skip-sharded-campaign",
        action="store_true",
        help="skip the sharded-campaign workload",
    )
    parser.add_argument(
        "--compare-baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "fail when any workload's wall time regresses beyond the "
            "tolerance against this baseline artifact, or when engine "
            "metrics diverge"
        ),
    )
    parser.add_argument(
        "--baseline-tolerance",
        type=float,
        default=BASELINE_TOLERANCE,
        metavar="X",
        help=(
            "wall-time regression factor the baseline gate tolerates "
            f"(default {BASELINE_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_engines.json"),
        help="artifact path (default BENCH_engines.json)",
    )
    parser.add_argument(
        "--history-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "append this run to a perf-trajectory history directory "
            f"(the committed one is {HISTORY_DIR})"
        ),
    )
    parser.add_argument(
        "--history-label",
        default=None,
        metavar="TEXT",
        help="free-form annotation stored with the history entry",
    )
    parser.add_argument(
        "--history-report",
        action="store_true",
        help=(
            "render the wall-time trend from --history-dir (default: the "
            "committed history) and exit without running the benchmark"
        ),
    )
    parser.add_argument(
        "--history-plot",
        type=Path,
        default=None,
        metavar="PNG",
        help=(
            "render the wall-time trajectory from --history-dir "
            "(default: the committed history) to a PNG and exit "
            "without running the benchmark (requires matplotlib)"
        ),
    )
    args = parser.parse_args(argv)
    if args.history_report or args.history_plot is not None:
        try:
            entries = load_history(args.history_dir or HISTORY_DIR)
            if args.history_report:
                print(render_history(entries))
            if args.history_plot is not None:
                print(f"wrote {plot_history(entries, args.history_plot)}")
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    document = run_engine_comparison(
        dies=args.dies,
        n_fft=args.fft_points,
        ramp_points_per_code=args.ramp_points,
        calibration_samples_per_code=args.cal_samples,
        campaign_dies=args.campaign_dies,
        seed=args.seed,
        workers=args.workers,
        include_yield_screen=not args.skip_yield_screen,
        include_calibrated_yield=not args.skip_calibrated_yield,
        include_campaign=not args.skip_campaign,
        include_sharded_campaign=not args.skip_sharded_campaign,
    )
    args.out.write_text(json.dumps(document, indent=2))
    print(f"wrote {args.out}")
    if args.history_dir is not None:
        entry_path = append_history(
            document, args.history_dir, label=args.history_label
        )
        print(f"appended history entry {entry_path}")
    _print_document(document)
    gate_passed = True
    if args.compare_baseline is not None:
        gate_passed = run_baseline_gate(
            document, args.compare_baseline, args.baseline_tolerance
        )
    return 0 if document["all_consistent"] and gate_passed else 1


if __name__ == "__main__":
    sys.exit(main())
