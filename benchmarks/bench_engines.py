"""Monte Carlo engine comparison: serial vs pool vs vectorized wall time.

Benchmarks two seeded die-population workloads through every
execution-engine configuration:

- ``dynamic-screen`` — the headline workload: 32 dies x 4096 samples,
  coherent tone capture + FFT metrics per die.  This is where
  die-batching bites: the per-die Python dispatch disappears and the
  FFTs run as one batched transform.
- ``yield-screen`` — the full ``repro mc`` workload (tone + 16
  samples/code linearity ramp).  The long ramp is per-sample bound, so
  engine differences are smaller; the pool supplies the parallel axis.
- ``calibrated-yield`` — the ``repro mc --calibrate`` workload: every
  die is foreground gain-calibrated before screening.  The vectorized
  engine captures each chunk's calibration ramp in one die-batched
  pass (``GainCalibrationArray``), so the per-die calibration Python
  dispatch disappears on top of the yield-screen batching.

Engine configurations per workload:

- ``serial``          — pool engine, 1 worker: the per-die loop.
- ``pool``            — pool engine, all CPUs: process parallelism.
- ``vectorized``      — vectorized engine, 1 worker: die-batched NumPy.
- ``vectorized+pool`` — vectorized engine, all CPUs: the composition
  (the pool fans out die-batched chunks).

Per-die metrics are asserted identical across the configurations (the
engines are bit-exact per die), and the wall times plus speedups are
emitted as a ``BENCH_engines.json`` artifact for the perf trajectory.

Run as a script::

    python benchmarks/bench_engines.py --dies 32 --fft-points 4096 \
        --out BENCH_engines.json

or through pytest (small smoke workload)::

    pytest benchmarks/bench_engines.py -q --benchmark-disable
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path

#: Schema tag for the emitted artifact.
BENCH_ENGINES_SCHEMA = "repro.bench-engines/v3"

#: Dies per vectorized chunk for the dynamic screen (cache-sized).
_DYNAMIC_DIE_CHUNK = 8


def _engine_configs(workers: int) -> dict[str, dict]:
    return {
        "serial": {"engine": "pool", "workers": 1},
        "pool": {"engine": "pool", "workers": workers},
        "vectorized": {"engine": "vectorized", "workers": 1},
        "vectorized+pool": {"engine": "vectorized", "workers": workers},
    }


# --- dynamic screen (tone + FFT only) ----------------------------------


@dataclass(frozen=True)
class _DynamicTask:
    """One die (or die chunk) of the dynamic screen."""

    samples: tuple
    n_fft: int
    conversion_rate: float = 110e6
    input_frequency: float = 10e6


def _measure_dynamic_die(task: _DynamicTask):
    from repro.core.adc import PipelineAdc
    from repro.core.config import AdcConfig
    from repro.signal.generators import SineGenerator
    from repro.signal.spectrum import SpectrumAnalyzer

    (die,) = task.samples
    adc = PipelineAdc(
        AdcConfig.paper_default(),
        conversion_rate=task.conversion_rate,
        operating_point=die.operating_point,
        seed=die.seed,
    )
    tone = SineGenerator.coherent(
        task.input_frequency, task.conversion_rate, task.n_fft, amplitude=0.995
    )
    metrics = SpectrumAnalyzer().analyze(
        adc.convert(tone, task.n_fft).codes, task.conversion_rate
    )
    return [(die.index, metrics.sndr_db, metrics.enob_bits)]


def _measure_dynamic_chunk(task: _DynamicTask):
    from repro.core.adc_array import AdcArray
    from repro.core.config import AdcConfig
    from repro.signal.generators import SineGenerator
    from repro.signal.spectrum import SpectrumAnalyzer

    adc = AdcArray(
        AdcConfig.paper_default(), task.conversion_rate, task.samples
    )
    tone = SineGenerator.coherent(
        task.input_frequency, task.conversion_rate, task.n_fft, amplitude=0.995
    )
    spectra = SpectrumAnalyzer().analyze_batch(
        adc.convert(tone, task.n_fft).codes, task.conversion_rate
    )
    return [
        (die.index, m.sndr_db, m.enob_bits)
        for die, m in zip(task.samples, spectra)
    ]


def _run_dynamic_config(dies, n_fft, engine, workers):
    from repro.runtime.batch import BatchRunner

    if engine == "pool":
        tasks = [_DynamicTask(samples=(die,), n_fft=n_fft) for die in dies]
        fn = _measure_dynamic_die
    else:
        chunk = _DYNAMIC_DIE_CHUNK
        tasks = [
            _DynamicTask(samples=tuple(dies[low : low + chunk]), n_fft=n_fft)
            for low in range(0, len(dies), chunk)
        ]
        fn = _measure_dynamic_chunk
    batch = BatchRunner(workers=workers).run(fn, tasks)
    batch.raise_first_failure()
    rows = [row for value in batch.values for row in value]
    return sorted(rows)


# --- the comparison harness --------------------------------------------


def _rows_close(a, b) -> bool:
    return len(a) == len(b) and all(
        x[0] == y[0]
        and all(
            math.isclose(p, q, rel_tol=1e-9, abs_tol=1e-12)
            for p, q in zip(x[1:], y[1:])
        )
        for x, y in zip(a, b)
    )


def _compare_configs(run_one, workers: int) -> dict:
    """Time every engine configuration through ``run_one(config)``."""
    results: dict[str, dict] = {}
    reference = None
    for name, config in _engine_configs(workers).items():
        start = time.perf_counter()
        rows = run_one(config)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = rows
        results[name] = {
            **config,
            "elapsed_s": elapsed,
            "consistent_with_serial": _rows_close(reference, rows),
        }
    serial_time = results["serial"]["elapsed_s"]
    for entry in results.values():
        entry["speedup_vs_serial"] = serial_time / entry["elapsed_s"]
    best = max(results, key=lambda name: results[name]["speedup_vs_serial"])
    return {
        "engines": results,
        "best_engine": best,
        "best_speedup_vs_serial": results[best]["speedup_vs_serial"],
        "all_consistent": all(
            entry["consistent_with_serial"] for entry in results.values()
        ),
    }


def run_engine_comparison(
    dies: int = 32,
    n_fft: int = 4096,
    ramp_points_per_code: int = 16,
    calibration_samples_per_code: int = 8,
    seed: int = 2026,
    workers: int | None = None,
    include_yield_screen: bool = True,
    include_calibrated_yield: bool = True,
) -> dict:
    """Time every engine configuration on the seeded workloads."""
    import numpy as np

    from repro.core.config import AdcConfig
    from repro.runtime.montecarlo import default_sampler, run_yield_analysis

    workers = workers or os.cpu_count() or 1
    population = default_sampler(AdcConfig.paper_default()).sample(
        dies, np.random.default_rng(seed)
    )
    # Warm NumPy/FFT caches and the import graph so the first timed
    # configuration is not charged for one-time setup.
    run_yield_analysis(n_dies=2, seed=seed, n_fft=512)

    workloads = {}
    workloads["dynamic-screen"] = {
        "params": {"dies": dies, "n_fft": n_fft, "seed": seed},
        **_compare_configs(
            lambda config: _run_dynamic_config(
                population, n_fft, config["engine"], config["workers"]
            ),
            workers,
        ),
    }
    def run_yield(config, calibrate=False):
        report = run_yield_analysis(
            n_dies=dies,
            seed=seed,
            n_fft=n_fft,
            ramp_points_per_code=ramp_points_per_code,
            calibrate=calibrate,
            calibration_samples_per_code=calibration_samples_per_code,
            **config,
        )
        if report.batch.failures:
            raise RuntimeError(
                f"die failures: {report.batch.failures[0].error}"
            )
        return sorted(
            (d.index, d.sndr_db, d.enob_bits, d.dnl_peak_lsb, d.inl_peak_lsb)
            for d in report.dies
        )

    if include_yield_screen:
        workloads["yield-screen"] = {
            "params": {
                "dies": dies,
                "n_fft": n_fft,
                "ramp_points_per_code": ramp_points_per_code,
                "seed": seed,
            },
            **_compare_configs(run_yield, workers),
        }
    if include_calibrated_yield:
        workloads["calibrated-yield"] = {
            "params": {
                "dies": dies,
                "n_fft": n_fft,
                "ramp_points_per_code": ramp_points_per_code,
                "calibration_samples_per_code": calibration_samples_per_code,
                "seed": seed,
            },
            **_compare_configs(
                lambda config: run_yield(config, calibrate=True), workers
            ),
        }
    return {
        "schema": BENCH_ENGINES_SCHEMA,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "workloads": workloads,
        "all_consistent": all(
            w["all_consistent"] for w in workloads.values()
        ),
    }


def _print_document(document: dict) -> None:
    for name, workload in document["workloads"].items():
        print(f"{name} ({workload['params']}):")
        for config, entry in workload["engines"].items():
            marker = (
                "" if entry["consistent_with_serial"] else "  METRICS DIFFER!"
            )
            print(
                f"  {config:>15}: {entry['elapsed_s']:6.2f} s  "
                f"({entry['speedup_vs_serial']:.2f}x vs serial){marker}"
            )


def test_engine_comparison_smoke(tmp_path):
    """Small-workload engine comparison: consistency is the assertion."""
    document = run_engine_comparison(
        dies=4,
        n_fft=1024,
        ramp_points_per_code=16,
        calibration_samples_per_code=4,
        workers=2,
    )
    assert document["all_consistent"], document
    assert "calibrated-yield" in document["workloads"]
    assert document["workloads"]["calibrated-yield"]["all_consistent"]
    artifact = tmp_path / "BENCH_engines.json"
    artifact.write_text(json.dumps(document, indent=2))
    print()
    _print_document(document)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dies", type=int, default=32)
    parser.add_argument("--fft-points", type=int, default=4096)
    parser.add_argument("--ramp-points", type=int, default=16)
    parser.add_argument(
        "--cal-samples",
        type=int,
        default=8,
        help="calibration-ramp samples per code (calibrated-yield workload)",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool width for the parallel configs (default: all CPUs)",
    )
    parser.add_argument(
        "--skip-yield-screen",
        action="store_true",
        help="skip the (uncalibrated) yield-screen workload",
    )
    parser.add_argument(
        "--skip-calibrated-yield",
        action="store_true",
        help="skip the calibrated-yield workload",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_engines.json"),
        help="artifact path (default BENCH_engines.json)",
    )
    args = parser.parse_args(argv)
    document = run_engine_comparison(
        dies=args.dies,
        n_fft=args.fft_points,
        ramp_points_per_code=args.ramp_points,
        calibration_samples_per_code=args.cal_samples,
        seed=args.seed,
        workers=args.workers,
        include_yield_screen=not args.skip_yield_screen,
        include_calibrated_yield=not args.skip_calibrated_yield,
    )
    args.out.write_text(json.dumps(document, indent=2))
    print(f"wrote {args.out}")
    _print_document(document)
    return 0 if document["all_consistent"] else 1


if __name__ == "__main__":
    sys.exit(main())
