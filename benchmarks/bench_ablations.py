"""Benchmarks: ablations of the paper's design decisions.

Each bench removes one of the paper's four tricks (stage scaling,
non-overlap removal, bulk-switched gates, the SC bias generator) and
prints what the trick was buying."""


from benchmarks.conftest import run_and_report


def test_ablation_stage_scaling(benchmark):
    """Paper section 2: scaling stages 2..10 saves power/area at a small
    noise penalty."""
    run_and_report(benchmark, "abl-scaling")


def test_ablation_non_overlap_clocking(benchmark):
    """Paper section 3: local clocking reclaims the non-overlap interval
    for settling."""
    run_and_report(benchmark, "abl-nonoverlap")


def test_ablation_switch_style(benchmark):
    """Paper section 3: bulk-switched gates vs plain TG vs the rejected
    bootstrapped switch."""
    run_and_report(benchmark, "abl-switch")


def test_ablation_bias_generator(benchmark):
    """Paper section 3 / Fig. 4: eq. (1) power scaling vs a worst-case
    fixed bias."""
    run_and_report(benchmark, "abl-bias")


def test_ablation_capacitor_spread(benchmark):
    """Paper section 3: eq. (1) absorbs the absolute capacitor spread a
    fixed bias must margin for."""
    run_and_report(benchmark, "abl-capspread")


def test_extension_foreground_calibration(benchmark):
    """Extension: foreground weight calibration recovers mismatch INL."""
    run_and_report(benchmark, "ext-calibration", quick=True)


def test_extension_noise_budget_audit(benchmark):
    """Extension: the analytic noise budget matches the simulation."""
    run_and_report(benchmark, "ext-noise-budget")


def test_extension_pvt_corners(benchmark):
    """Extension: five-corner PVT sign-off at 110 MS/s."""
    run_and_report(benchmark, "ext-corners", quick=True)


def test_extension_datasheet(benchmark):
    """Extension: min/typ/max datasheet over a die batch."""
    run_and_report(benchmark, "ext-datasheet", quick=True)


def test_extension_dynamic_range_sweep(benchmark):
    """Extension: SNDR vs amplitude (the standard dynamic-range plot)."""
    run_and_report(benchmark, "ext-amplitude", quick=True)
