"""Benchmark: regenerate paper Fig. 4 (power vs conversion rate).

Prints the power series 10..130 MS/s and checks the 97 mW @ 110 MS/s
and 110 mW @ 130 MS/s anchors plus linearity (paper eq. (1))."""

from benchmarks.conftest import run_and_report


def test_fig4_power_versus_conversion_rate(benchmark):
    result = run_and_report(benchmark, "fig4")
    # The regenerated series covers the full published axis.
    rates = [float(row[0]) for row in result.rows]
    assert min(rates) <= 10 and max(rates) >= 130
