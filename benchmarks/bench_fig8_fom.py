"""Benchmark: regenerate paper Fig. 8 (figure of merit vs 1/area).

Rebuilds the 15-converter scatter with this design's *measured* model
numbers and checks the ordering claims (highest FM, 2nd-lowest area,
2nd 1.8 V part, [5]-[7] nearest)."""

from benchmarks.conftest import run_and_report


def test_fig8_figure_of_merit_survey(benchmark):
    result = run_and_report(benchmark, "fig8")
    assert len(result.rows) == 15
    # Sorted by FM: the first row must be this work.
    assert result.rows[0][-1] == "this-work"
