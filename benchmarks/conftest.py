"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper artifact (timed once via
pytest-benchmark), prints the regenerated rows/series — the same numbers
the paper reports — and asserts the paper-shape claims.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, run_experiment


def run_and_report(benchmark, experiment_id: str, quick: bool = False):
    """Time one experiment, print its report, and assert its claims."""
    result: ExperimentResult = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"quick": quick},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    failed = [c.claim for c in result.claims if not c.passed]
    assert not failed, f"{experiment_id} missed paper claims: {failed}"
    return result
