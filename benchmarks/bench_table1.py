"""Benchmark: regenerate paper Table I (key data) and Fig. 7 (area).

Characterizes the canonical die at 110 MS/s — dynamic metrics, static
linearity, power, area, figure of merit — and compares row by row."""

from benchmarks.conftest import run_and_report


def test_table1_key_data(benchmark):
    result = run_and_report(benchmark, "table1")
    parameters = {row[0] for row in result.rows}
    for expected in ("SNR (fin=10MHz)", "DNL", "Area", "FM (eq. 2)"):
        assert expected in parameters


def test_fig7_area_budget(benchmark):
    result = run_and_report(benchmark, "fig7")
    blocks = {row[0] for row in result.rows}
    assert "pipeline chain" in blocks and "total" in blocks
