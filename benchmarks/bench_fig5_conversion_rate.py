"""Benchmark: regenerate paper Fig. 5 (SFDR/SNR/SNDR vs conversion rate).

Prints the full 5..160 MS/s dynamic series at f_in = 10 MHz and checks
the plateau (SNDR >= 64 dB, 20-120 MS/s), the 10-ENOB reach (>= 62 dB to
140 MS/s) and the collapse beyond the knee."""

from benchmarks.conftest import run_and_report


def test_fig5_metrics_versus_conversion_rate(benchmark):
    result = run_and_report(benchmark, "fig5")
    rates = [float(row[0]) for row in result.rows]
    assert min(rates) <= 5 and max(rates) >= 160
